#include "src/crashlab/harness.h"

#include <cstdio>
#include <memory>
#include <random>

#include "src/blockdev/nvmm_block_device.h"
#include "src/common/constants.h"
#include "src/crashlab/crash_state_gen.h"
#include "src/fs/blockfs/block_fs.h"
#include "src/fs/pmfs/fsck.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"
#include "src/wal/wal_fs.h"

namespace hinfs {

const char* CrashFsName(CrashFs fs) {
  switch (fs) {
    case CrashFs::kPmfs: return "pmfs";
    case CrashFs::kHinfs: return "hinfs";
    case CrashFs::kBlockFsJournal: return "blockfs";
    case CrashFs::kBlockFsDax: return "blockfs-dax";
    case CrashFs::kWalPmfs: return "pmfs+wal";
  }
  return "?";
}

namespace {

PmfsOptions CrashPmfsOptions() {
  PmfsOptions o;
  o.max_inodes = 512;
  o.journal_bytes = 256 << 10;
  return o;
}

HinfsOptions CrashHinfsOptions() {
  HinfsOptions o;
  o.buffer_bytes = 1 << 20;
  // Keep writeback out of the background so traces are deterministic: the
  // oracle handles writeback at *any* time, but reproducible traces make
  // failures debuggable.
  o.writeback_period_ms = 3'600'000;
  o.staleness_ms = 3'600'000;
  o.eager_decay_ms = 3'600'000;
  o.buffer_shards = 1;
  o.writeback_threads = 1;
  return o;
}

BlockFsOptions CrashBlockFsOptions(bool dax, NvmmDevice* nvmm) {
  BlockFsOptions o;
  o.journal = true;
  o.dax = dax;
  o.max_inodes = 512;
  o.journal_blocks = 128;  // 512 KB: ample for these workloads, no checkpoints
  o.page_cache_pages = 0;  // unlimited: no pressure-driven early writeback
  if (dax) {
    o.dax_nvmm = nvmm;
    o.dax_nvmm_base = 0;
  }
  return o;
}

struct MountedFs {
  std::unique_ptr<NvmmBlockDevice> bd;
  std::unique_ptr<FileSystem> fs;
};

// kWalPmfs: the log carve comes off the end of the device. 1 MB with a
// single region keeps every record of these workloads in the log (no
// pressure checkpoint mid-trace), and checkpoint_ms = 0 disables the
// background drain so traces are deterministic.
constexpr uint64_t kCrashWalBytes = 1ull << 20;

WalOptions CrashWalOptions(WalCommitFormat commit_format) {
  WalOptions o;
  o.regions = 1;
  o.total_bytes = kCrashWalBytes;
  o.commit_format = commit_format;
  o.checkpoint_ms = 0;
  return o;
}

Result<MountedFs> MountKind(const CrashlabOptions& opts, NvmmDevice* nvmm, bool format) {
  const CrashFs kind = opts.fs;
  MountedFs m;
  switch (kind) {
    case CrashFs::kPmfs: {
      HINFS_ASSIGN_OR_RETURN(auto fs, format ? PmfsFs::Format(nvmm, CrashPmfsOptions())
                                             : PmfsFs::Mount(nvmm));
      m.fs = std::move(fs);
      break;
    }
    case CrashFs::kHinfs: {
      HINFS_ASSIGN_OR_RETURN(auto fs,
                             format ? HinfsFs::Format(nvmm, CrashHinfsOptions(),
                                                      CrashPmfsOptions())
                                    : HinfsFs::Mount(nvmm, CrashHinfsOptions()));
      m.fs = std::move(fs);
      break;
    }
    case CrashFs::kBlockFsJournal:
    case CrashFs::kBlockFsDax: {
      NvmmBlockDeviceConfig bcfg;
      bcfg.block_layer_overhead_ns = 0;
      m.bd = std::make_unique<NvmmBlockDevice>(nvmm, 0, nvmm->size() / kBlockSize, bcfg);
      const BlockFsOptions o =
          CrashBlockFsOptions(kind == CrashFs::kBlockFsDax, nvmm);
      HINFS_ASSIGN_OR_RETURN(auto fs, format ? BlockFs::Format(m.bd.get(), o)
                                             : BlockFs::Mount(m.bd.get(), o));
      m.fs = std::move(fs);
      break;
    }
    case CrashFs::kWalPmfs: {
      if (nvmm->size() <= kCrashWalBytes) {
        return Status(ErrorCode::kInvalidArgument, "device too small for the WAL carve");
      }
      const uint64_t fs_bytes = nvmm->size() - kCrashWalBytes;
      std::unique_ptr<FileSystem> inner;
      if (format) {
        PmfsOptions po = CrashPmfsOptions();
        po.device_bytes = fs_bytes;
        HINFS_ASSIGN_OR_RETURN(inner, PmfsFs::Format(nvmm, po));
      } else {
        HINFS_ASSIGN_OR_RETURN(inner, PmfsFs::Mount(nvmm));
      }
      const WalOptions wo = CrashWalOptions(opts.wal_commit_format);
      HINFS_ASSIGN_OR_RETURN(
          auto fs, format ? WalFs::Format(std::move(inner), nvmm, fs_bytes,
                                          kCrashWalBytes, wo)
                          : WalFs::Mount(std::move(inner), nvmm, fs_bytes,
                                         kCrashWalBytes, wo));
      m.fs = std::move(fs);
      break;
    }
  }
  return m;
}

OracleOptions OracleFor(CrashFs fs) {
  switch (fs) {
    case CrashFs::kPmfs: return OracleOptions::Pmfs();
    case CrashFs::kHinfs: return OracleOptions::Hinfs();
    case CrashFs::kBlockFsJournal: return OracleOptions::BlockFsJournal();
    case CrashFs::kBlockFsDax: return OracleOptions::BlockFsDax();
    case CrashFs::kWalPmfs: return OracleOptions::WalPmfs();
  }
  return OracleOptions::Pmfs();
}

Status ExecuteOp(Vfs* vfs, const CrashOp& op) {
  switch (op.kind) {
    case CrashOp::Kind::kMkdir:
      return vfs->Mkdir(op.path);
    case CrashOp::Kind::kCreate: {
      HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(op.path, kRdWr | kCreate));
      return vfs->Close(fd);
    }
    case CrashOp::Kind::kWrite: {
      HINFS_ASSIGN_OR_RETURN(int fd,
                             vfs->Open(op.path, kRdWr | (op.o_sync ? kSync : kRdOnly)));
      HINFS_ASSIGN_OR_RETURN(size_t n,
                             vfs->Pwrite(fd, op.data.data(), op.data.size(), op.offset));
      if (n != op.data.size()) {
        return Status(ErrorCode::kIoError, "short crashlab write");
      }
      return vfs->Close(fd);
    }
    case CrashOp::Kind::kTruncate: {
      HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(op.path, kRdWr));
      HINFS_RETURN_IF_ERROR(vfs->Ftruncate(fd, op.new_size));
      return vfs->Close(fd);
    }
    case CrashOp::Kind::kFsync: {
      HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(op.path, kRdWr));
      HINFS_RETURN_IF_ERROR(vfs->Fsync(fd));
      return vfs->Close(fd);
    }
    case CrashOp::Kind::kUnlink:
      return vfs->Unlink(op.path);
    case CrashOp::Kind::kRename:
      return vfs->Rename(op.path, op.path2);
    case CrashOp::Kind::kSyncFs:
      return vfs->SyncFs();
  }
  return Status(ErrorCode::kInvalidArgument, "unknown crash op");
}

}  // namespace

Result<CrashlabReport> RunCrashlab(const std::vector<CrashOp>& workload,
                                   const CrashlabOptions& opts) {
  CrashlabReport report;
  report.fs = opts.fs;
  report.flush_instruction = opts.flush_instruction;
  report.ops = workload.size();

  NvmmConfig ncfg;
  ncfg.size_bytes = opts.device_bytes;
  ncfg.latency_mode = LatencyMode::kNone;
  ncfg.flush_instruction = opts.flush_instruction;
  ncfg.track_persistence = true;
  NvmmDevice nvmm(ncfg);

  HINFS_ASSIGN_OR_RETURN(MountedFs bed, MountKind(opts, &nvmm, /*format=*/true));
  if (opts.inject_skip_journal_fence) {
    auto* pmfs = dynamic_cast<PmfsFs*>(bed.fs.get());
    if (pmfs == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "inject_skip_journal_fence requires a PMFS-layout fs");
    }
    pmfs->set_skip_append_fence_for_testing(true);
  }

  nvmm.StartPersistTrace();
  std::vector<size_t> bounds;
  {
    Vfs vfs(bed.fs.get());
    const std::shared_ptr<PersistTrace> live = nvmm.persist_trace();
    for (const CrashOp& op : workload) {
      bounds.push_back(live->size());
      Status st = ExecuteOp(&vfs, op);
      if (!st.ok()) {
        return Status(st.code(),
                      "crashlab workload op failed (" + DescribeCrashOp(op) +
                          "): " + st.message());
      }
    }
  }
  const std::shared_ptr<PersistTrace> trace = nvmm.StopPersistTrace();
  bounds.push_back(trace->size());
  // Tear down the recording FS only after the trace is detached, so shutdown
  // flushes don't pollute it.
  bed.fs.reset();
  bed.bd.reset();

  report.trace_events = trace->size();
  report.trace_fences = trace->fences();
  report.trace_flushed_lines = trace->flushed_lines();
  report.trace_epochs = trace->epochs();
  report.trace_max_unfenced_lines = trace->max_unfenced_lines();

  CrashOracle oracle(OracleFor(opts.fs));
  size_t applied = 0;

  NvmmConfig scfg;
  scfg.size_bytes = opts.device_bytes;
  scfg.latency_mode = LatencyMode::kNone;
  scfg.flush_instruction = opts.flush_instruction;
  NvmmDevice scratch(scfg);

  CrashGenOptions gopts;
  gopts.flush_instruction = opts.flush_instruction;
  gopts.seed = opts.seed;
  gopts.max_states_per_cut = opts.max_states_per_cut;
  gopts.max_total_states = opts.max_total_states;
  CrashStateEnumerator gen(*trace, gopts);

  Status st = gen.Enumerate([&](const CrashImageSpec& spec) -> Result<bool> {
    while (applied < workload.size() && bounds[applied + 1] < spec.cut) {
      oracle.Apply(workload[applied]);
      applied++;
    }
    const CrashOp* inflight =
        applied < workload.size() && bounds[applied] < spec.cut ? &workload[applied]
                                                                : nullptr;
    HINFS_RETURN_IF_ERROR(scratch.InstallImage(spec.image->data(), spec.image->size()));
    std::string diag;
    bool failed = false;
    Result<MountedFs> mounted = MountKind(opts, &scratch, /*format=*/false);
    if (!mounted.ok()) {
      diag = "remount failed: " + mounted.status().ToString();
      failed = true;
    } else {
      // For kWalPmfs the fsck runs after WalFs::Mount replayed the log, so it
      // validates the recovered inner-PMFS image, replay included.
      if (opts.run_fsck &&
          (opts.fs == CrashFs::kPmfs || opts.fs == CrashFs::kHinfs ||
           opts.fs == CrashFs::kWalPmfs)) {
        Result<FsckReport> fsck = FsckPmfs(&scratch);
        if (!fsck.ok()) {
          diag = "fsck failed to run: " + fsck.status().ToString();
          failed = true;
        } else if (!fsck->clean()) {
          diag = "fsck errors: " + fsck->errors.front();
          failed = true;
        }
      }
      if (!failed) {
        Vfs vfs(mounted->fs.get());
        failed = !oracle.Check(&vfs, inflight, &diag).ok();
      }
    }
    if (failed) {
      CrashFailure f;
      f.cut = spec.cut;
      f.epoch = spec.epoch;
      f.inflight_op = inflight != nullptr ? DescribeCrashOp(*inflight) : "";
      f.surviving_lines = spec.surviving_lines;
      f.diag = diag;
      report.failures.push_back(std::move(f));
      if (report.failures.size() >= opts.max_failures) {
        return false;
      }
    }
    return true;
  });
  HINFS_RETURN_IF_ERROR(st);

  report.cuts = gen.cuts_visited();
  report.states_explored = gen.states_emitted();
  report.states_deduped = gen.states_deduped();
  report.sampled = gen.sampled();
  return report;
}

std::string CrashlabReport::Summary() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "crashlab[%s/%s]: %zu ops, %zu events, %zu cuts -> %zu distinct states "
                "(%zu duplicates skipped%s), %zu failures; trace: %llu fences, %llu "
                "flushed lines, %llu epochs, max %llu unfenced lines",
                CrashFsName(fs),
                flush_instruction == FlushInstruction::kClflush ? "clflush" : "clflushopt",
                ops, trace_events, cuts, states_explored, states_deduped,
                sampled ? ", sampled" : "", failures.size(),
                static_cast<unsigned long long>(trace_fences),
                static_cast<unsigned long long>(trace_flushed_lines),
                static_cast<unsigned long long>(trace_epochs),
                static_cast<unsigned long long>(trace_max_unfenced_lines));
  return buf;
}

std::string CrashlabReport::ToJson() const {
  std::string s = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"fs\": \"%s\",\n  \"flush\": \"%s\",\n  \"ops\": %zu,\n"
                "  \"trace_events\": %zu,\n  \"cuts\": %zu,\n  \"states_explored\": %zu,\n"
                "  \"states_deduped\": %zu,\n  \"sampled\": %s,\n",
                CrashFsName(fs),
                flush_instruction == FlushInstruction::kClflush ? "clflush" : "clflushopt",
                ops, trace_events, cuts, states_explored, states_deduped,
                sampled ? "true" : "false");
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"fences\": %llu,\n  \"flushed_lines\": %llu,\n  \"epochs\": %llu,\n"
                "  \"max_unfenced_lines\": %llu,\n",
                static_cast<unsigned long long>(trace_fences),
                static_cast<unsigned long long>(trace_flushed_lines),
                static_cast<unsigned long long>(trace_epochs),
                static_cast<unsigned long long>(trace_max_unfenced_lines));
  s += buf;
  s += "  \"failures\": [\n";
  for (size_t i = 0; i < failures.size(); i++) {
    const CrashFailure& f = failures[i];
    std::snprintf(buf, sizeof(buf), "    {\"cut\": %zu, \"epoch\": %llu, \"op\": \"%s\", ",
                  f.cut, static_cast<unsigned long long>(f.epoch),
                  f.inflight_op.c_str());
    s += buf;
    s += "\"surviving_lines\": [";
    for (size_t j = 0; j < f.surviving_lines.size(); j++) {
      s += (j != 0 ? "," : "") + std::to_string(f.surviving_lines[j]);
    }
    s += "], \"diag\": \"";
    for (char c : f.diag) {
      if (c == '"' || c == '\\') {
        s += '\\';
      }
      s += c;
    }
    s += "\"}";
    s += i + 1 < failures.size() ? ",\n" : "\n";
  }
  s += "  ]\n}\n";
  return s;
}

// --- canned workloads ---------------------------------------------------------

namespace {

// Deterministic non-zero payload, distinct per (tag, position) so stale or
// cross-file bytes can't masquerade as legal values.
std::string Payload(uint64_t tag, size_t len) {
  std::string s(len, '\0');
  for (size_t i = 0; i < len; i++) {
    s[i] = static_cast<char>(1 + (tag * 131 + i * 7 + (tag >> 4)) % 250);
  }
  return s;
}

CrashOp Mkdir(std::string path) {
  CrashOp op;
  op.kind = CrashOp::Kind::kMkdir;
  op.path = std::move(path);
  return op;
}
CrashOp Create(std::string path) {
  CrashOp op;
  op.kind = CrashOp::Kind::kCreate;
  op.path = std::move(path);
  return op;
}
CrashOp PwriteOp(std::string path, uint64_t off, uint64_t tag, size_t len,
                 bool o_sync = false) {
  CrashOp op;
  op.kind = CrashOp::Kind::kWrite;
  op.path = std::move(path);
  op.offset = off;
  op.data = Payload(tag, len);
  op.o_sync = o_sync;
  return op;
}
CrashOp TruncateOp(std::string path, uint64_t size) {
  CrashOp op;
  op.kind = CrashOp::Kind::kTruncate;
  op.path = std::move(path);
  op.new_size = size;
  return op;
}
CrashOp FsyncOp(std::string path) {
  CrashOp op;
  op.kind = CrashOp::Kind::kFsync;
  op.path = std::move(path);
  return op;
}
CrashOp UnlinkOp(std::string path) {
  CrashOp op;
  op.kind = CrashOp::Kind::kUnlink;
  op.path = std::move(path);
  return op;
}
CrashOp RenameOp(std::string from, std::string to) {
  CrashOp op;
  op.kind = CrashOp::Kind::kRename;
  op.path = std::move(from);
  op.path2 = std::move(to);
  return op;
}
CrashOp SyncFsOp() {
  CrashOp op;
  op.kind = CrashOp::Kind::kSyncFs;
  return op;
}

}  // namespace

std::vector<std::string> CrashWorkloadMixes() {
  return {"create", "append", "overwrite", "rename", "fsync", "truncate", "mixed"};
}

Result<std::vector<CrashOp>> MakeCrashWorkload(const std::string& mix, uint64_t seed) {
  std::vector<CrashOp> ops;
  if (mix == "create") {
    ops.push_back(Mkdir("/d"));
    ops.push_back(Create("/d/a"));
    ops.push_back(PwriteOp("/d/a", 0, seed + 1, 100));
    ops.push_back(Create("/d/b"));
    ops.push_back(PwriteOp("/d/b", 0, seed + 2, 300));
    ops.push_back(Create("/c"));
    ops.push_back(PwriteOp("/c", 0, seed + 3, 64));
  } else if (mix == "append") {
    ops.push_back(Create("/log"));
    ops.push_back(PwriteOp("/log", 0, seed + 1, 3000));
    ops.push_back(PwriteOp("/log", 3000, seed + 2, 3000));
    ops.push_back(FsyncOp("/log"));
    ops.push_back(PwriteOp("/log", 6000, seed + 3, 5000));  // crosses chunk bounds
    ops.push_back(PwriteOp("/log", 11000, seed + 4, 500));
  } else if (mix == "overwrite") {
    ops.push_back(Create("/f"));
    ops.push_back(PwriteOp("/f", 0, seed + 1, 9000));
    ops.push_back(FsyncOp("/f"));
    ops.push_back(PwriteOp("/f", 1000, seed + 2, 2000));
    ops.push_back(PwriteOp("/f", 4000, seed + 3, 64));
    ops.push_back(FsyncOp("/f"));
    ops.push_back(PwriteOp("/f", 100, seed + 4, 50));
  } else if (mix == "rename") {
    ops.push_back(Create("/a"));
    ops.push_back(PwriteOp("/a", 0, seed + 1, 500));
    ops.push_back(Create("/b"));
    ops.push_back(PwriteOp("/b", 0, seed + 2, 700));
    ops.push_back(RenameOp("/a", "/c"));
    ops.push_back(RenameOp("/b", "/c"));  // over an existing target
    ops.push_back(RenameOp("/c", "/d"));
  } else if (mix == "fsync") {
    ops.push_back(Create("/s"));
    ops.push_back(PwriteOp("/s", 0, seed + 1, 2000, /*o_sync=*/true));
    ops.push_back(PwriteOp("/s", 2000, seed + 2, 1000));
    ops.push_back(FsyncOp("/s"));
    ops.push_back(PwriteOp("/s", 3000, seed + 3, 1500, /*o_sync=*/true));
    ops.push_back(SyncFsOp());
  } else if (mix == "truncate") {
    ops.push_back(Create("/t"));
    ops.push_back(PwriteOp("/t", 0, seed + 1, 10000));
    ops.push_back(FsyncOp("/t"));
    ops.push_back(TruncateOp("/t", 3000));
    ops.push_back(PwriteOp("/t", 5000, seed + 2, 1000));  // regrow across a hole
    ops.push_back(TruncateOp("/t", 0));
    ops.push_back(PwriteOp("/t", 0, seed + 3, 100));
  } else if (mix == "mixed") {
    std::mt19937_64 rng(seed * 0x2545f4914f6cdd1dull + 1);
    const std::vector<std::string> files = {"/m0", "/m1", "/m2"};
    for (const std::string& f : files) {
      ops.push_back(Create(f));
    }
    for (int i = 0; i < 8; i++) {
      const std::string& f = files[rng() % files.size()];
      switch (rng() % 4) {
        case 0:
        case 1:
          ops.push_back(PwriteOp(f, rng() % 6000, seed * 100 + i, 64 + rng() % 3000,
                                 (rng() % 4) == 0));
          break;
        case 2:
          ops.push_back(FsyncOp(f));
          break;
        case 3:
          ops.push_back(TruncateOp(f, rng() % 5000));
          break;
      }
    }
    ops.push_back(RenameOp("/m0", "/renamed"));
    ops.push_back(UnlinkOp("/m1"));
    ops.push_back(SyncFsOp());
  } else {
    return Status(ErrorCode::kInvalidArgument, "unknown crash workload mix: " + mix);
  }
  return ops;
}

}  // namespace hinfs
