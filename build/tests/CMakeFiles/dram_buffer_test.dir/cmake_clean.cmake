file(REMOVE_RECURSE
  "CMakeFiles/dram_buffer_test.dir/dram_buffer_test.cc.o"
  "CMakeFiles/dram_buffer_test.dir/dram_buffer_test.cc.o.d"
  "dram_buffer_test"
  "dram_buffer_test.pdb"
  "dram_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
