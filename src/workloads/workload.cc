#include "src/workloads/workload.h"

#include <mutex>
#include <thread>

namespace hinfs {

Status RunThreads(int threads, const std::function<Status(int)>& body) {
  std::vector<std::thread> pool;
  std::mutex mu;
  Status first_error = OkStatus();
  for (int i = 0; i < threads; i++) {
    pool.emplace_back([&, i] {
      Status st = body(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) {
          first_error = st;
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return first_error;
}

void FillPattern(std::vector<uint8_t>& buf, uint64_t seed) {
  for (size_t i = 0; i < buf.size(); i++) {
    buf[i] = static_cast<uint8_t>((seed * 131 + i * 7) & 0xff);
  }
}

}  // namespace hinfs
