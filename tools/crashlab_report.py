#!/usr/bin/env python3
"""Pretty-print crashlab --json output.

Usage:
    tools/crashlab_report.py report.json [more.json ...]

Accepts either a single report object or the array-of-{mix, report} form
that `crashlab --mix all --json <path>` writes. Prints a per-mix table of
state-space coverage and persist-trace counters, then details every
oracle/fsck violation. Exit status 1 if any report contains failures.
"""

import json
import sys


def load_reports(path):
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict):
        return [{"mix": data.get("mix", "-"), "report": data}]
    return data


def fmt_row(cols, widths):
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2

    entries = []
    for path in argv[1:]:
        try:
            entries.extend(load_reports(path))
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {path}: {e}", file=sys.stderr)
            return 2

    header = ["mix", "fs", "flush", "ops", "cuts", "states", "deduped",
              "sampled", "fences", "flushed", "epochs", "max-unfenced", "fails"]
    rows = []
    total_states = 0
    total_failures = 0
    for e in entries:
        r = e["report"]
        nfail = len(r.get("failures", []))
        total_states += r.get("states_explored", 0)
        total_failures += nfail
        rows.append([
            e.get("mix", "-"), r.get("fs", "?"), r.get("flush", "?"),
            r.get("ops", 0), r.get("cuts", 0), r.get("states_explored", 0),
            r.get("states_deduped", 0), "yes" if r.get("sampled") else "no",
            r.get("fences", 0), r.get("flushed_lines", 0), r.get("epochs", 0),
            r.get("max_unfenced_lines", 0), nfail,
        ])

    widths = [max(len(str(header[i])), max((len(str(row[i])) for row in rows),
                                           default=0))
              for i in range(len(header))]
    print(fmt_row(header, widths))
    print(fmt_row(["-" * w for w in widths], widths))
    for row in rows:
        print(fmt_row(row, widths))
    print(f"\ntotal: {total_states} distinct crash states, "
          f"{total_failures} failures")

    for e in entries:
        for f in e["report"].get("failures", []):
            op = f.get("op") or "(op boundary)"
            print(f"\nFAIL mix={e.get('mix', '-')} cut={f.get('cut')} "
                  f"epoch={f.get('epoch')} op={op}")
            lines = f.get("surviving_lines", [])
            if lines:
                print(f"  surviving cachelines: {lines}")
            print(f"  {f.get('diag', '')}")

    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
