// Tenant model for the multi-tenant NVMM bandwidth scheduler (DESIGN.md §9).
//
// A tenant is a principal the QoS scheduler accounts bandwidth to: one hinfsd
// client (negotiated at handshake, see src/server/protocol.h kHello), or the
// local process for in-process beds. Orthogonally, every charge carries a
// traffic class: foreground (a syscall the tenant is blocked on) or background
// (writeback workers, WAL checkpointing — work nobody is waiting on). The
// scheduler gives foreground traffic a configurable reserve of the device
// bandwidth; background traffic shares the remainder.
//
// The current (tenant, class) pair rides a thread-local QosContext instead of
// a parameter threaded through every FS layer: the charge point is
// NvmmDevice::FlushBatch, many frames below the syscall entry, and the layers
// between (buffer manager, WAL, journal) are tenant-agnostic. Server worker
// threads install the session's tenant around each request; background threads
// install kBackground once at thread start. A thread that never installs a
// context charges as tenant 0 foreground, which keeps single-tenant beds
// behaving exactly like the pre-QoS code.

#ifndef SRC_QOS_TENANT_H_
#define SRC_QOS_TENANT_H_

#include <cstdint>

namespace hinfs {
namespace qos {

using TenantId = uint32_t;

// Tenant 0 is the local/system tenant: in-process callers that never
// negotiated an id, and hinfsd sessions that skipped the hello handshake.
inline constexpr TenantId kSystemTenant = 0;

// Upper bound on distinct tenants; keeps scheduler state a fixed-size array
// of padded atomics (no resize, no lock on the charge path).
inline constexpr uint32_t kMaxTenants = 64;

enum class TrafficClass : uint8_t {
  kForeground = 0,  // a client is blocked on this charge
  kBackground = 1,  // writeback / checkpoint traffic, nobody waiting
};

struct QosContext {
  TenantId tenant = kSystemTenant;
  TrafficClass cls = TrafficClass::kForeground;
};

namespace internal {
inline QosContext& ThreadQosContext() {
  thread_local QosContext ctx;
  return ctx;
}
}  // namespace internal

// The calling thread's current charge identity (tenant 0 foreground unless a
// ScopedQosContext is live).
inline QosContext CurrentQosContext() { return internal::ThreadQosContext(); }

// RAII installer: charges issued by this thread inside the scope are
// attributed to (tenant, cls). Nests; the previous context is restored on
// destruction.
class ScopedQosContext {
 public:
  ScopedQosContext(TenantId tenant, TrafficClass cls)
      : saved_(internal::ThreadQosContext()) {
    internal::ThreadQosContext() = QosContext{tenant, cls};
  }
  explicit ScopedQosContext(const QosContext& ctx) : ScopedQosContext(ctx.tenant, ctx.cls) {}
  ~ScopedQosContext() { internal::ThreadQosContext() = saved_; }

  ScopedQosContext(const ScopedQosContext&) = delete;
  ScopedQosContext& operator=(const ScopedQosContext&) = delete;

 private:
  QosContext saved_;
};

}  // namespace qos
}  // namespace hinfs

#endif  // SRC_QOS_TENANT_H_
