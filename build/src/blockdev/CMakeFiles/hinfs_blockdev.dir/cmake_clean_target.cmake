file(REMOVE_RECURSE
  "libhinfs_blockdev.a"
)
