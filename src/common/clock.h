// Time sources for the emulators and benchmarks.
//
// Two notions of time coexist in this repository:
//  - Wall time (MonotonicNowNs, SpinFor): used when the NVMM emulator runs in "spin"
//    mode, which mirrors the paper's RDTSCP spin-loop latency injection.
//  - Simulated time (SimClock): a per-thread virtual nanosecond counter used in
//    "virtual" latency mode, so unit tests can assert exact cost accounting and
//    benches can run deterministically on noisy machines.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <cstdint>

namespace hinfs {

// Current monotonic wall-clock time in nanoseconds.
uint64_t MonotonicNowNs();

// Busy-spins for approximately `ns` nanoseconds. This is the userspace equivalent
// of the paper's RDTSCP spin loop: it burns CPU rather than yielding, because the
// delay being modeled (an NVMM write completing) would stall the CPU pipeline in
// the same way.
void SpinFor(uint64_t ns);

// Per-thread simulated clock. Each thread accumulates virtual nanoseconds as the
// emulator charges it for operations. Threads' clocks are independent; shared
// resources (e.g. NVMM write bandwidth) are arbitrated by the BandwidthLimiter.
class SimClock {
 public:
  // Virtual nanoseconds accumulated by the calling thread.
  static uint64_t ThreadNowNs();

  // Advances the calling thread's virtual clock.
  static void Advance(uint64_t ns);

  // Resets the calling thread's virtual clock to zero (test setup).
  static void ResetThread();
};

}  // namespace hinfs

#endif  // SRC_COMMON_CLOCK_H_
