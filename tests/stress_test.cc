// Concurrency stress: many threads hammering one file system instance with
// mixed operations while the background writeback engine runs. These tests
// assert invariants (no crashes, no lost durable data, consistent sizes)
// rather than exact contents, since interleavings are nondeterministic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/common/rng.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/fs/pmfs/fsck.h"
#include "src/vfs/vfs.h"
#include "src/workloads/fs_setup.h"
#include "src/workloads/workload.h"

namespace hinfs {
namespace {

TestBedConfig StressConfig() {
  TestBedConfig cfg;
  cfg.nvmm.size_bytes = 128 << 20;
  cfg.nvmm.latency_mode = LatencyMode::kNone;
  cfg.hinfs.buffer_bytes = 2 << 20;  // small: forces eviction under load
  cfg.hinfs.buffer_shards = 4;       // exercise the sharded buffer under FS churn
  cfg.hinfs.writeback_period_ms = 5;
  cfg.pmfs.max_inodes = 1 << 14;
  return cfg;
}

class StressTest : public ::testing::TestWithParam<FsKind> {};

TEST_P(StressTest, ParallelWritersDistinctFiles) {
  auto bed = MakeTestBed(GetParam(), StressConfig());
  ASSERT_TRUE(bed.ok());
  Vfs* vfs = (*bed)->vfs.get();
  constexpr int kThreads = 6;
  constexpr int kFilesPerThread = 8;
  constexpr size_t kFileBytes = 64 * 1024;

  Status st = RunThreads(kThreads, [&](int t) -> Status {
    std::vector<uint8_t> payload(kFileBytes);
    FillPattern(payload, static_cast<uint64_t>(t));
    for (int f = 0; f < kFilesPerThread; f++) {
      const std::string path = "/w" + std::to_string(t) + "_" + std::to_string(f);
      HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(path, kWrOnly | kCreate));
      HINFS_RETURN_IF_ERROR(vfs->Write(fd, payload.data(), payload.size()).status());
      HINFS_RETURN_IF_ERROR(vfs->Fsync(fd));
      HINFS_RETURN_IF_ERROR(vfs->Close(fd));
    }
    return OkStatus();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Every file durable and intact.
  for (int t = 0; t < kThreads; t++) {
    std::vector<uint8_t> expect(kFileBytes);
    FillPattern(expect, static_cast<uint64_t>(t));
    for (int f = 0; f < kFilesPerThread; f++) {
      const std::string path = "/w" + std::to_string(t) + "_" + std::to_string(f);
      auto content = vfs->ReadFileToString(path);
      ASSERT_TRUE(content.ok()) << path;
      ASSERT_EQ(content->size(), kFileBytes) << path;
      EXPECT_EQ(std::memcmp(content->data(), expect.data(), kFileBytes), 0) << path;
    }
  }
  ASSERT_TRUE(vfs->Unmount().ok());
}

TEST_P(StressTest, MixedOpsChurn) {
  auto bed = MakeTestBed(GetParam(), StressConfig());
  ASSERT_TRUE(bed.ok());
  Vfs* vfs = (*bed)->vfs.get();
  ASSERT_TRUE(vfs->Mkdir("/churn").ok());
  std::atomic<uint64_t> failures{0};

  Status st = RunThreads(6, [&](int t) -> Status {
    Rng rng(2000 + t);
    std::vector<uint8_t> payload(32 * 1024);
    FillPattern(payload, static_cast<uint64_t>(t));
    for (int step = 0; step < 250; step++) {
      const std::string path = "/churn/f" + std::to_string(rng.Below(24));
      const double roll = rng.NextDouble();
      if (roll < 0.4) {
        Result<int> fd = vfs->Open(path, kRdWr | kCreate);
        if (!fd.ok()) {
          continue;  // racing unlink/create
        }
        const size_t len = 1 + rng.Below(payload.size());
        Result<size_t> n = vfs->Pwrite(*fd, payload.data(), len, rng.Below(8192));
        if (!n.ok() && n.status().code() != ErrorCode::kNotFound) {
          failures++;
        }
        (void)vfs->Close(*fd);
      } else if (roll < 0.7) {
        Result<int> fd = vfs->Open(path, kRdOnly);
        if (fd.ok()) {
          std::vector<uint8_t> buf(16 * 1024);
          Result<size_t> n = vfs->Read(*fd, buf.data(), buf.size());
          if (!n.ok() && n.status().code() != ErrorCode::kNotFound) {
            failures++;
          }
          (void)vfs->Close(*fd);
        }
      } else if (roll < 0.85) {
        Result<int> fd = vfs->Open(path, kRdWr);
        if (fd.ok()) {
          Status fst = vfs->Fsync(*fd);
          if (!fst.ok() && fst.code() != ErrorCode::kNotFound) {
            failures++;
          }
          (void)vfs->Close(*fd);
        }
      } else {
        Status ust = vfs->Unlink(path);
        if (!ust.ok() && ust.code() != ErrorCode::kNotFound &&
            ust.code() != ErrorCode::kIsDir) {
          failures++;
        }
      }
    }
    return OkStatus();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(failures.load(), 0u);
  ASSERT_TRUE(vfs->SyncFs().ok());
  ASSERT_TRUE(vfs->Unmount().ok());
}

INSTANTIATE_TEST_SUITE_P(Fs, StressTest,
                         ::testing::Values(FsKind::kPmfs, FsKind::kHinfs, FsKind::kHinfsWb),
                         [](const auto& info) {
                           std::string name = FsKindName(info.param);
                           for (char& c : name) {
                             if (c == '+' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(StressFsckTest, HinfsImageCleanAfterChurn) {
  // After a heavy multithreaded churn + unmount, the on-NVMM image passes the
  // full fsck invariant suite.
  NvmmConfig cfg;
  cfg.size_bytes = 128 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  HinfsOptions hopts;
  hopts.buffer_bytes = 2 << 20;
  hopts.writeback_period_ms = 5;
  PmfsOptions popts;
  popts.max_inodes = 1 << 14;
  {
    auto fs = HinfsFs::Format(&nvmm, hopts, popts);
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.Mkdir("/d").ok());
    Status st = RunThreads(4, [&](int t) -> Status {
      Rng rng(77 + t);
      std::vector<uint8_t> payload(20 * 1024);
      FillPattern(payload, static_cast<uint64_t>(t));
      for (int i = 0; i < 150; i++) {
        const std::string path = "/d/s" + std::to_string(t) + "_" + std::to_string(i % 10);
        Result<int> fd = vfs.Open(path, kRdWr | kCreate);
        if (!fd.ok()) {
          continue;
        }
        (void)vfs.Pwrite(*fd, payload.data(), 1 + rng.Below(payload.size()), rng.Below(4096));
        if (rng.Chance(0.2)) {
          (void)vfs.Fsync(*fd);
        }
        (void)vfs.Close(*fd);
        if (rng.Chance(0.2)) {
          (void)vfs.Unlink(path);
        }
      }
      return OkStatus();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(vfs.Unmount().ok());
  }
  auto report = FsckPmfs(&nvmm);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

}  // namespace
}  // namespace hinfs
