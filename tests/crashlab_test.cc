// Systematic crash-state exploration through the crashlab harness.
//
// Three layers of guarantees:
//   1. Small-budget runs of every FS personality stay violation-free in the
//      default test pass (fast: a few hundred states).
//   2. The acceptance sweep enumerates >= 1000 distinct crash states across
//      PMFS and HiNFS workloads under clflushopt sampling with zero oracle or
//      fsck violations.
//   3. A deliberately injected ordering bug (dropping the fences on journal
//      appends, commit included) is caught under clflushopt and — by design —
//      masked under clflush, proving the subset enumeration distinguishes the
//      two flush semantics.

#include <gtest/gtest.h>

#include "src/crashlab/harness.h"

namespace hinfs {
namespace {

CrashlabOptions SmallBudget(CrashFs fs, FlushInstruction flush) {
  CrashlabOptions o;
  o.fs = fs;
  o.flush_instruction = flush;
  o.max_states_per_cut = 8;
  o.max_total_states = 200;
  return o;
}

std::string FailureDump(const CrashlabReport& r) {
  std::string s = r.Summary();
  for (const CrashFailure& f : r.failures) {
    s += "\n  cut=" + std::to_string(f.cut) + " op='" + f.inflight_op + "': " + f.diag;
  }
  return s;
}

TEST(CrashlabTest, SmallBudgetAllPersonalitiesClean) {
  for (CrashFs fs : {CrashFs::kPmfs, CrashFs::kHinfs, CrashFs::kBlockFsJournal,
                     CrashFs::kBlockFsDax, CrashFs::kWalPmfs}) {
    for (FlushInstruction flush :
         {FlushInstruction::kClflush, FlushInstruction::kClflushopt}) {
      auto workload = MakeCrashWorkload("mixed", /*seed=*/1);
      ASSERT_TRUE(workload.ok());
      auto report = RunCrashlab(*workload, SmallBudget(fs, flush));
      ASSERT_TRUE(report.ok()) << CrashFsName(fs) << ": "
                               << report.status().ToString();
      EXPECT_TRUE(report->ok()) << FailureDump(*report);
      EXPECT_GT(report->states_explored, 0u);
    }
  }
}

TEST(CrashlabTest, AcceptanceSweepThousandStatesZeroViolations) {
  size_t total_states = 0;
  for (CrashFs fs : {CrashFs::kPmfs, CrashFs::kHinfs}) {
    for (const std::string& mix : CrashWorkloadMixes()) {
      auto workload = MakeCrashWorkload(mix, /*seed=*/1);
      ASSERT_TRUE(workload.ok());
      CrashlabOptions opts;
      opts.fs = fs;
      opts.flush_instruction = FlushInstruction::kClflushopt;
      auto report = RunCrashlab(*workload, opts);
      ASSERT_TRUE(report.ok()) << CrashFsName(fs) << "/" << mix << ": "
                               << report.status().ToString();
      EXPECT_TRUE(report->ok()) << CrashFsName(fs) << "/" << mix << ": "
                                << FailureDump(*report);
      total_states += report->states_explored;
    }
  }
  EXPECT_GE(total_states, 1000u);
}

// The logged-durability acceptance sweep: WalFs over PMFS must survive crash
// cuts through appends (volatile, absent from the image), commits (torn
// commit records detected by CRC or prevented by the fence format), and the
// remount-time replay, across every workload mix, both flush instructions,
// and both commit-record formats — with the fsck validating each replayed
// inner image and zero oracle violations.
TEST(CrashlabTest, WalLoggedDurabilitySweepZeroViolations) {
  size_t total_states = 0;
  for (WalCommitFormat format : {WalCommitFormat::kChecksum, WalCommitFormat::kFence}) {
    for (FlushInstruction flush :
         {FlushInstruction::kClflush, FlushInstruction::kClflushopt}) {
      for (const std::string& mix : CrashWorkloadMixes()) {
        auto workload = MakeCrashWorkload(mix, /*seed=*/1);
        ASSERT_TRUE(workload.ok());
        CrashlabOptions opts;
        opts.fs = CrashFs::kWalPmfs;
        opts.flush_instruction = flush;
        opts.wal_commit_format = format;
        opts.max_states_per_cut = 8;
        opts.max_total_states = 400;
        auto report = RunCrashlab(*workload, opts);
        ASSERT_TRUE(report.ok())
            << mix << "/" << (format == WalCommitFormat::kChecksum ? "checksum" : "fence")
            << ": " << report.status().ToString();
        EXPECT_TRUE(report->ok())
            << mix << "/" << (format == WalCommitFormat::kChecksum ? "checksum" : "fence")
            << ": " << FailureDump(*report);
        total_states += report->states_explored;
      }
    }
  }
  EXPECT_GE(total_states, 1000u);
}

TEST(CrashlabTest, InjectedJournalFenceBugCaughtUnderClflushopt) {
  auto workload = MakeCrashWorkload("create", /*seed=*/1);
  ASSERT_TRUE(workload.ok());

  // The injection drops the fence after every journal append (undo entries
  // and the commit). Under clflushopt an undo entry can then stay unfenced
  // while the in-place update it covers lands via a later fence — a crash
  // subset that persists the update but not its undo record leaves a torn
  // transaction recovery cannot roll back. (Dropping *only* the commit fence
  // is benign here: every op ends with a fenced in-place mtime update that
  // rescues the pending commit line; crashlab verified zero violations for
  // that variant, which is itself a result worth pinning.)
  CrashlabOptions opts;
  opts.fs = CrashFs::kPmfs;
  opts.flush_instruction = FlushInstruction::kClflushopt;
  opts.inject_skip_journal_fence = true;
  auto report = RunCrashlab(*workload, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ok())
      << "dropping the journal-append fences must be caught under clflushopt";

  // The same bug is invisible under clflush: there, a flush is durable on its
  // own and the fence is pure ordering within an already-serialized stream.
  opts.flush_instruction = FlushInstruction::kClflush;
  auto masked = RunCrashlab(*workload, opts);
  ASSERT_TRUE(masked.ok()) << masked.status().ToString();
  EXPECT_TRUE(masked->ok()) << FailureDump(*masked);
}

TEST(CrashlabTest, ReportJsonIsWellFormedEnough) {
  auto workload = MakeCrashWorkload("create", /*seed=*/1);
  ASSERT_TRUE(workload.ok());
  auto report =
      RunCrashlab(*workload, SmallBudget(CrashFs::kPmfs, FlushInstruction::kClflush));
  ASSERT_TRUE(report.ok());
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"fs\": \"pmfs\""), std::string::npos);
  EXPECT_NE(json.find("\"states_explored\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
}

}  // namespace
}  // namespace hinfs
