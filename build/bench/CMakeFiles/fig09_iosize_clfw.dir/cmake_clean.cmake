file(REMOVE_RECURSE
  "CMakeFiles/fig09_iosize_clfw.dir/fig09_iosize_clfw.cc.o"
  "CMakeFiles/fig09_iosize_clfw.dir/fig09_iosize_clfw.cc.o.d"
  "fig09_iosize_clfw"
  "fig09_iosize_clfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_iosize_clfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
