#include "src/hinfs/hinfs_fs.h"

#include <algorithm>
#include <cstring>

#include "src/common/clock.h"
#include "src/hinfs/cacheline_bitmap.h"

namespace hinfs {

HinfsFs::HinfsFs(NvmmDevice* nvmm, const HinfsOptions& options)
    : PmfsFs(nvmm), options_(options) {}

HinfsFs::~HinfsFs() {
  if (buffer_ != nullptr) {
    buffer_->StopBackgroundWriteback();
  }
}

std::string HinfsFs::Name() const {
  if (!options_.eager_checker) {
    return "hinfs-wb";
  }
  if (!options_.clfw) {
    return "hinfs-nclfw";
  }
  return "hinfs";
}

void HinfsFs::InitBuffer() {
  checker_ = std::make_unique<EagerPersistenceChecker>(options_,
                                                       nvmm_->latency().write_latency_ns());
  buffer_ = std::make_unique<DramBufferManager>(
      nvmm_, options_,
      [this](uint64_t ino, uint64_t file_block) { return EnsureDataBlockAddr(ino, file_block); });
  buffer_->StartBackgroundWriteback();
}

Result<std::unique_ptr<HinfsFs>> HinfsFs::Format(NvmmDevice* nvmm, const HinfsOptions& options,
                                                 const PmfsOptions& pmfs_options) {
  std::unique_ptr<HinfsFs> fs(new HinfsFs(nvmm, options));
  HINFS_RETURN_IF_ERROR(fs->InitFormat(pmfs_options));
  fs->InitBuffer();
  return fs;
}

Result<std::unique_ptr<HinfsFs>> HinfsFs::Mount(NvmmDevice* nvmm, const HinfsOptions& options) {
  std::unique_ptr<HinfsFs> fs(new HinfsFs(nvmm, options));
  HINFS_RETURN_IF_ERROR(fs->InitMount());
  fs->InitBuffer();
  return fs;
}

// --- read path --------------------------------------------------------------------

Result<size_t> HinfsFs::Read(uint64_t ino, uint64_t offset, void* dst, size_t len) {
  std::shared_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  if (inode.type != static_cast<uint8_t>(FileType::kRegular)) {
    return Status(ErrorCode::kIsDir);
  }
  if (offset >= inode.size) {
    return static_cast<size_t>(0);
  }
  const size_t n = static_cast<size_t>(std::min<uint64_t>(len, inode.size - offset));

  ScopedTimer t(stats_.Counter(kStatReadAccessNs));
  auto* out = static_cast<uint8_t*>(dst);
  uint64_t cur = offset;
  size_t remaining = n;
  while (remaining > 0) {
    const uint64_t fb = cur / kBlockSize;
    const size_t in_block = cur % kBlockSize;
    const size_t chunk = std::min(remaining, kBlockSize - in_block);

    HINFS_ASSIGN_OR_RETURN(uint64_t blk, MapBlock(inode, fb));
    const uint64_t nvmm_addr = blk == 0 ? kNoNvmmAddr : DataBlockAddr(blk);
    HINFS_ASSIGN_OR_RETURN(bool buffered,
                           buffer_->Read(ino, fb, in_block, out, chunk, nvmm_addr));
    if (!buffered) {
      // Direct read from NVMM (or zeros for a hole): the single-copy path.
      if (blk == 0) {
        std::memset(out, 0, chunk);
      } else {
        HINFS_RETURN_IF_ERROR(nvmm_->Load(nvmm_addr + in_block, out, chunk));
      }
    }
    out += chunk;
    cur += chunk;
    remaining -= chunk;
  }
  return n;
}

// --- write path --------------------------------------------------------------------

Status HinfsFs::WriteChunk(uint64_t ino, PmfsInode& inode, bool eager, bool sync_case1,
                           uint64_t offset, const void* src, size_t len) {
  const uint64_t fb = offset / kBlockSize;
  const size_t in_block = offset % kBlockSize;

  if (eager) {
    stats_.Add(kStatEagerWrites, 1);
    if (sync_case1 && buffer_->Contains(ino, fb)) {
      // Consistency rule for case (1): the block is buffered, so write the
      // DRAM copy and explicitly evict it before returning (paper §3.3.2).
      // Case (2) needs no check: eager-marked blocks were evicted at the
      // marking sync, so NVMM already holds their latest data.
      HINFS_ASSIGN_OR_RETURN(uint64_t blk, MapBlock(inode, fb));
      const uint64_t nvmm_addr = blk == 0 ? kNoNvmmAddr : DataBlockAddr(blk);
      HINFS_RETURN_IF_ERROR(
          buffer_->Write(ino, fb, in_block, src, len, nvmm_addr).status());
      HINFS_RETURN_IF_ERROR(buffer_->FlushBlock(ino, fb));
      // Size/mtime accounting still goes through the direct path below? No:
      // the buffered write holds the data; update size here.
      if (offset + len > inode.size) {
        inode.size = offset + len;
        HINFS_RETURN_IF_ERROR(UpdateInodeU64(ino, offsetof(PmfsInode, size), inode.size));
      }
      return OkStatus();
    }
    // Direct single-copy write to NVMM with full persistence (inherited PMFS
    // path, which also maintains size/mtime).
    return WriteToNvmm(ino, inode, offset, src, len);
  }

  stats_.Add(kStatLazyWrites, 1);
  HINFS_ASSIGN_OR_RETURN(uint64_t blk, MapBlock(inode, fb));
  const uint64_t nvmm_addr = blk == 0 ? kNoNvmmAddr : DataBlockAddr(blk);
  {
    ScopedTimer t(stats_.Counter(kStatWriteAccessNs));
    HINFS_RETURN_IF_ERROR(buffer_->Write(ino, fb, in_block, src, len, nvmm_addr).status());
  }
  // Metadata is not buffered: size extension is persisted immediately. A crash
  // before writeback leaves a hole (zeros), which is consistent.
  if (offset + len > inode.size) {
    inode.size = offset + len;
    HINFS_RETURN_IF_ERROR(UpdateInodeU64(ino, offsetof(PmfsInode, size), inode.size));
  }
  return OkStatus();
}

Result<size_t> HinfsFs::Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                              const WriteOptions& options) {
  const bool sync = options.eager_persistent();
  std::unique_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  if (inode.type != static_cast<uint8_t>(FileType::kRegular)) {
    return Status(ErrorCode::kIsDir);
  }

  const uint64_t now = MonotonicNowNs();
  const auto* in = static_cast<const uint8_t*>(src);
  uint64_t cur = offset;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t fb = cur / kBlockSize;
    const size_t in_block = cur % kBlockSize;
    const size_t chunk = std::min(remaining, kBlockSize - in_block);

    // Feed the ghost buffer (it assumes every write is buffered), then ask the
    // Eager-Persistent Write Checker which mode this chunk takes.
    const uint64_t mask = LineMaskFor(in_block, chunk);
    checker_->RecordWrite(ino, fb, static_cast<uint32_t>(CountLines(mask)), mask);
    const bool eager = sync || checker_->ShouldGoDirect(ino, fb, now);
    HINFS_RETURN_IF_ERROR(WriteChunk(ino, inode, eager, sync, cur, in, chunk));

    in += chunk;
    cur += chunk;
    remaining -= chunk;
  }

  inode.mtime_ns = now;
  HINFS_RETURN_IF_ERROR(UpdateInodeU64(ino, offsetof(PmfsInode, mtime_ns), now));
  stats_.Add(kStatWrittenBytes, len);
  return len;
}

// --- synchronization ----------------------------------------------------------------

Status HinfsFs::Fsync(uint64_t ino, const SyncOptions& options) {
  (void)options;  // The Write Buffer flush covers both scopes in one pass.
  ScopedTimer t(stats_.Counter(kStatFsyncNs));
  std::unique_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  (void)inode;

  // Evaluate the Buffer Benefit Model on this sync's ghost counters, then
  // persist and evict the file's buffered blocks. Eviction is what lets
  // case-(2) eager writes go direct afterwards: NVMM provably holds the
  // latest data from this point. The last-sync time is volatile bookkeeping
  // (the paper stores it in the kernel VFS inode), kept inside the checker.
  checker_->OnFsync(ino, MonotonicNowNs());
  const uint64_t lines_before = buffer_->writeback_lines();
  HINFS_RETURN_IF_ERROR(buffer_->FlushFile(ino));
  stats_.Add(kStatFsyncBytes, (buffer_->writeback_lines() - lines_before) * kCachelineSize);
  nvmm_->Fence();
  return OkStatus();
}

Status HinfsFs::SyncFs() {
  HINFS_RETURN_IF_ERROR(buffer_->FlushAll());
  return PmfsFs::SyncFs();
}

Status HinfsFs::Unmount() {
  // Quiesce the engine, then flush every dirty DRAM block to NVMM (paper:
  // "HiNFS flushes all the DRAM blocks to the NVMM when unmounting").
  buffer_->StopBackgroundWriteback();
  HINFS_RETURN_IF_ERROR(buffer_->FlushAll());
  // Snapshot the buffer's lifetime counters into the stats registry so
  // benches/tools read them alongside the FS-internal timers.
  stats_.Add(kStatDramBufferHits, buffer_->buffer_hits());
  stats_.Add(kStatDramBufferMisses, buffer_->buffer_misses());
  stats_.Add(kStatWritebackBlocks, buffer_->writeback_blocks());
  stats_.Add(kStatLockfreeReadHits, buffer_->lockfree_read_hits());
  stats_.Add(kStatLockfreeReadFallbacks, buffer_->lockfree_read_fallbacks());
  stats_.Add(kStatFramesStolen, buffer_->frames_stolen());
  stats_.Add(kStatWbWorkerWakeups, buffer_->worker_wakeups_total());
  stats_.Add(kStatWbSpuriousWakeups, buffer_->worker_spurious_wakeups());
  stats_.Add(kStatWbDirtyRuns, buffer_->wb_dirty_runs());
  stats_.Add(kStatWbFlushCalls, buffer_->wb_flush_calls());
  stats_.Add(kStatWbCoalescedLines, buffer_->wb_coalesced_lines());
  stats_.Add(kStatPromotionsBatched, buffer_->promotions_batched());
  stats_.Add(kStatPromotionsDrained, buffer_->promotions_drained());
  stats_.Add(kStatEpochRetired, buffer_->epoch_retired());
  return PmfsFs::Unmount();
}

// --- namespace / mmap ----------------------------------------------------------------

Status HinfsFs::Unlink(uint64_t dir_ino, std::string_view name) {
  // Resolve the target so its buffered blocks can be dropped without being
  // written back (writes to deleted files never reach NVMM), and so stale
  // buffer/ghost state cannot leak onto a recycled inode number.
  Result<uint64_t> target = Lookup(dir_ino, name);
  bool regular = false;
  if (target.ok()) {
    HINFS_ASSIGN_OR_RETURN(InodeAttr attr, GetAttr(*target));
    regular = attr.type == FileType::kRegular;
    if (regular) {
      HINFS_RETURN_IF_ERROR(buffer_->DiscardFile(*target));
      checker_->Forget(*target);
    }
  }
  HINFS_RETURN_IF_ERROR(PmfsFs::Unlink(dir_ino, name));
  if (regular) {
    // A racing writer with an open fd may have re-buffered blocks between the
    // discard above and the unlink; drop them so a recycled inode number never
    // observes stale buffer or ghost state.
    HINFS_RETURN_IF_ERROR(buffer_->DiscardFile(*target));
    checker_->Forget(*target);
  }
  return OkStatus();
}

Status HinfsFs::Truncate(uint64_t ino, uint64_t new_size) {
  const uint64_t from_block = (new_size + kBlockSize - 1) / kBlockSize;
  HINFS_RETURN_IF_ERROR(buffer_->DiscardFile(ino, from_block));
  if (new_size % kBlockSize != 0) {
    // Flush the buffered boundary block so the base truncate's tail zeroing
    // lands on the authoritative (NVMM) copy.
    HINFS_RETURN_IF_ERROR(buffer_->FlushBlock(ino, new_size / kBlockSize));
  }
  return PmfsFs::Truncate(ino, new_size);
}

Result<uint8_t*> HinfsFs::Mmap(uint64_t ino, uint64_t offset, size_t len) {
  // Flush all dirty DRAM blocks of the file, then pin it Eager-Persistent for
  // the duration of the mapping (paper §4.2) so file writes stay coherent with
  // the direct mapping.
  HINFS_RETURN_IF_ERROR(buffer_->FlushFile(ino));
  checker_->ForceEager(ino);
  Result<uint8_t*> ptr = PmfsFs::Mmap(ino, offset, len);
  if (!ptr.ok()) {
    checker_->ClearForceEager(ino);
  }
  return ptr;
}

Status HinfsFs::Munmap(uint64_t ino) {
  checker_->ClearForceEager(ino);
  return PmfsFs::Munmap(ino);
}

}  // namespace hinfs
