#include <gtest/gtest.h>

#include <cstring>

#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

class HinfsFsTest : public ::testing::Test {
 protected:
  void Build(HinfsOptions hopts) {
    NvmmConfig cfg;
    cfg.size_bytes = 64 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions popts;
    popts.max_inodes = 4096;
    popts.journal_bytes = 1 << 20;
    auto fs = HinfsFs::Format(nvmm_.get(), hopts, popts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  void SetUp() override {
    HinfsOptions hopts;
    hopts.buffer_bytes = 4 << 20;
    hopts.writeback_period_ms = 100000;  // effectively manual writeback
    hopts.staleness_ms = 1000000;
    Build(hopts);
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<HinfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(HinfsFsTest, WriteReadThroughBuffer) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "lazy data").ok());
  auto content = vfs_->ReadFileToString("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "lazy data");
  EXPECT_GT(fs_->stats().Get(kStatLazyWrites), 0u);
  EXPECT_EQ(fs_->stats().Get(kStatEagerWrites), 0u);
}

TEST_F(HinfsFsTest, LazyWriteDefersNvmmTraffic) {
  nvmm_->ResetCounters();
  std::vector<uint8_t> data(64 * 1024, 0x6b);
  auto fd = vfs_->Open("/lazy", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, data.data(), data.size()).ok());
  // Only metadata (inode updates, allocation) touched NVMM; the 64 KB payload
  // did not.
  EXPECT_LT(nvmm_->flushed_bytes(), data.size() / 4);
  ASSERT_TRUE(vfs_->Fsync(*fd).ok());
  EXPECT_GE(nvmm_->flushed_bytes(), data.size());
}

TEST_F(HinfsFsTest, SyncOpenWritesAreEager) {
  auto fd = vfs_->Open("/sync", kWrOnly | kCreate | kSync);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(8192, 0x4d);
  nvmm_->ResetCounters();
  ASSERT_TRUE(vfs_->Write(*fd, data.data(), data.size()).ok());
  EXPECT_GE(nvmm_->flushed_bytes(), data.size());
  EXPECT_GT(fs_->stats().Get(kStatEagerWrites), 0u);
}

TEST_F(HinfsFsTest, ReadMergesBufferAndNvmm) {
  // Write a block eagerly (via O_SYNC), then overwrite part of it lazily.
  {
    auto fd = vfs_->Open("/m", kWrOnly | kCreate | kSync);
    ASSERT_TRUE(fd.ok());
    std::vector<uint8_t> base(kBlockSize, 0xaa);
    ASSERT_TRUE(vfs_->Write(*fd, base.data(), base.size()).ok());
    ASSERT_TRUE(vfs_->Close(*fd).ok());
  }
  {
    auto fd = vfs_->Open("/m", kWrOnly);
    ASSERT_TRUE(fd.ok());
    std::vector<uint8_t> patch(64, 0xbb);
    ASSERT_TRUE(vfs_->Pwrite(*fd, patch.data(), patch.size(), 128).ok());
    ASSERT_TRUE(vfs_->Close(*fd).ok());
  }
  auto content = vfs_->ReadFileToString("/m");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(static_cast<uint8_t>((*content)[0]), 0xaa);
  EXPECT_EQ(static_cast<uint8_t>((*content)[128]), 0xbb);
  EXPECT_EQ(static_cast<uint8_t>((*content)[192]), 0xaa);
}

TEST_F(HinfsFsTest, FsyncEvictsBufferedBlocks) {
  ASSERT_TRUE(vfs_->WriteFile("/e", std::string(10000, 'e')).ok());
  auto attr = vfs_->Stat("/e");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(fs_->buffer().Contains(attr->ino, 0));
  auto fd = vfs_->Open("/e", kRdOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Fsync(*fd).ok());
  EXPECT_FALSE(fs_->buffer().Contains(attr->ino, 0));
}

TEST_F(HinfsFsTest, RepeatedFsyncMarksBlocksEager) {
  // Append-then-fsync (varmail style): after the first sync the model marks
  // the blocks eager, and subsequent writes go direct.
  auto fd = vfs_->Open("/mail", kWrOnly | kCreate | kAppend);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> msg(kBlockSize, 'm');
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(vfs_->Write(*fd, msg.data(), msg.size()).ok());
    ASSERT_TRUE(vfs_->Fsync(*fd).ok());
  }
  // Appends hit fresh blocks each time; blocks written once then synced are
  // marked eager. Overwrite one of those already-synced blocks:
  nvmm_->ResetCounters();
  const uint64_t eager_before = fs_->stats().Get(kStatEagerWrites);
  ASSERT_TRUE(vfs_->Pwrite(*fd, msg.data(), msg.size(), 0).ok());
  EXPECT_GT(fs_->stats().Get(kStatEagerWrites), eager_before);
  EXPECT_GE(nvmm_->flushed_bytes(), msg.size());
}

TEST_F(HinfsFsTest, UnlinkDropsBufferedWrites) {
  std::vector<uint8_t> data(128 * 1024, 0x77);
  auto fd = vfs_->Open("/shortlived", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  nvmm_->ResetCounters();
  ASSERT_TRUE(vfs_->Unlink("/shortlived").ok());
  // The 128 KB of buffered data was never written to NVMM (only metadata
  // journaling traffic appears).
  EXPECT_LT(nvmm_->flushed_bytes(), 16 * 1024u);
}

TEST_F(HinfsFsTest, TruncateDiscardsBufferedTail) {
  std::vector<uint8_t> data(32 * 1024, 0x55);
  auto fd = vfs_->Open("/t", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(vfs_->Ftruncate(*fd, 4096).ok());
  auto attr = vfs_->Fstat(*fd);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 4096u);
  EXPECT_FALSE(fs_->buffer().Contains(attr->ino, 2));
  // Remaining content intact.
  uint8_t out[64];
  auto n = vfs_->Pread(*fd, out, 64, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out[0], 0x55);
}

TEST_F(HinfsFsTest, UnmountFlushesAndRemounts) {
  ASSERT_TRUE(vfs_->WriteFile("/persist", std::string(20000, 'p')).ok());
  ASSERT_TRUE(vfs_->Unmount().ok());
  fs_.reset();

  HinfsOptions hopts;
  hopts.buffer_bytes = 4 << 20;
  auto fs = HinfsFs::Mount(nvmm_.get(), hopts);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(*fs);
  vfs_ = std::make_unique<Vfs>(fs_.get());
  auto content = vfs_->ReadFileToString("/persist");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 20000u);
  EXPECT_EQ((*content)[0], 'p');
}

TEST_F(HinfsFsTest, SyncFsFlushesEverything) {
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(vfs_->WriteFile("/s" + std::to_string(i), std::string(5000, 's')).ok());
  }
  ASSERT_TRUE(vfs_->SyncFs().ok());
  for (int i = 0; i < 5; i++) {
    auto attr = vfs_->Stat("/s" + std::to_string(i));
    ASSERT_TRUE(attr.ok());
    EXPECT_FALSE(fs_->buffer().Contains(attr->ino, 0));
  }
}

TEST_F(HinfsFsTest, MmapFlushesAndPinsEager) {
  ASSERT_TRUE(vfs_->WriteFile("/map", std::string(kBlockSize, 'm')).ok());
  auto attr = vfs_->Stat("/map");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(fs_->buffer().Contains(attr->ino, 0));
  auto ptr = fs_->Mmap(attr->ino, 0, kBlockSize);
  ASSERT_TRUE(ptr.ok()) << ptr.status().ToString();
  EXPECT_FALSE(fs_->buffer().Contains(attr->ino, 0));  // flushed + evicted
  EXPECT_EQ((*ptr)[0], 'm');
  // While mapped, file writes are eager (stay coherent with the mapping).
  auto fd = vfs_->Open("/map", kWrOnly);
  ASSERT_TRUE(fd.ok());
  const char c = 'X';
  ASSERT_TRUE(vfs_->Pwrite(*fd, &c, 1, 0).ok());
  EXPECT_EQ((*ptr)[0], 'X');  // visible through the direct mapping
  ASSERT_TRUE(fs_->Munmap(attr->ino).ok());
}

TEST_F(HinfsFsTest, HolesThroughBufferReadZero) {
  auto fd = vfs_->Open("/holes", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Pwrite(*fd, "tail", 4, 5 * kBlockSize).ok());
  char out[8] = {1, 1};
  auto n = vfs_->Pread(*fd, out, 8, kBlockSize);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out[0], 0);
  // After fsync (buffer drained) the hole is still zero.
  ASSERT_TRUE(vfs_->Fsync(*fd).ok());
  n = vfs_->Pread(*fd, out, 8, kBlockSize);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out[0], 0);
}

TEST_F(HinfsFsTest, LargeLazyFileFlushedCorrectly) {
  const size_t total = 3 << 20;  // crosses radix height 2
  std::vector<uint8_t> payload(1 << 16);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(i * 13);
  }
  auto fd = vfs_->Open("/big", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  for (size_t off = 0; off < total; off += payload.size()) {
    ASSERT_TRUE(vfs_->Write(*fd, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(vfs_->Fsync(*fd).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());

  fd = vfs_->Open("/big", kRdOnly);
  ASSERT_TRUE(fd.ok());
  uint8_t out[256];
  for (uint64_t off : {uint64_t{0}, uint64_t{(1 << 20) + 4096}, uint64_t{total - 256}}) {
    auto n = vfs_->Pread(*fd, out, 256, off);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, 256u);
    for (int i = 0; i < 256; i++) {
      ASSERT_EQ(out[i], payload[(off + i) % payload.size()]) << off << "+" << i;
    }
  }
}

TEST_F(HinfsFsTest, HinfsWbBuffersEverything) {
  HinfsOptions hopts;
  hopts.buffer_bytes = 4 << 20;
  hopts.eager_checker = false;
  Build(hopts);
  EXPECT_EQ(fs_->Name(), "hinfs-wb");
  auto fd = vfs_->Open("/wb", kWrOnly | kCreate | kAppend);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> msg(kBlockSize, 'w');
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(vfs_->Write(*fd, msg.data(), msg.size()).ok());
    ASSERT_TRUE(vfs_->Fsync(*fd).ok());
  }
  // Even after repeated syncs, writes keep going through the buffer.
  ASSERT_TRUE(vfs_->Pwrite(*fd, msg.data(), msg.size(), 0).ok());
  EXPECT_EQ(fs_->stats().Get(kStatEagerWrites), 0u);
}

TEST_F(HinfsFsTest, BufferSmallerThanFileStillCorrect) {
  HinfsOptions hopts;
  hopts.buffer_bytes = 32 * kBlockSize;  // 128 KB buffer
  hopts.writeback_period_ms = 5;
  Build(hopts);
  const size_t total = 1 << 20;  // 1 MB file through a 128 KB buffer
  std::vector<uint8_t> payload(1 << 14);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  auto fd = vfs_->Open("/spill", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  for (size_t off = 0; off < total; off += payload.size()) {
    ASSERT_TRUE(vfs_->Write(*fd, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  auto content = vfs_->ReadFileToString("/spill");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content->size(), total);
  for (size_t i = 0; i < total; i += 4097) {
    ASSERT_EQ(static_cast<uint8_t>((*content)[i]), payload[i % payload.size()]) << i;
  }
}

}  // namespace
}  // namespace hinfs
