#include "src/hinfs/dram_buffer.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/clock.h"
#include "src/hinfs/cacheline_bitmap.h"

namespace hinfs {

namespace {

size_t NextPow2(size_t x) {
  size_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

// Shard count: power of two (the key hash is masked), defaulting to the host's
// concurrency, clamped so every shard owns at least two frames.
size_t ResolveShardCount(const HinfsOptions& options, size_t capacity_blocks) {
  size_t n = options.buffer_shards > 0
                 ? NextPow2(static_cast<size_t>(options.buffer_shards))
                 : NextPow2(std::max(1u, std::thread::hardware_concurrency()));
  while (n > 1 && n * 2 > capacity_blocks) {
    n >>= 1;
  }
  return n;
}

}  // namespace

DramBufferManager::DramBufferManager(NvmmDevice* nvmm, const HinfsOptions& options,
                                     EnsureBlockFn ensure_block)
    : nvmm_(nvmm),
      options_(options),
      ensure_block_(std::move(ensure_block)),
      capacity_blocks_(std::max<size_t>(options.buffer_bytes / kBlockSize, 4)),
      pool_(new uint8_t[capacity_blocks_ * kBlockSize]) {
  const size_t nshards = ResolveShardCount(options, capacity_blocks_);
  shard_mask_ = static_cast<uint32_t>(nshards - 1);
  shards_.reserve(nshards);
  const size_t base = capacity_blocks_ / nshards;
  const size_t rem = capacity_blocks_ % nshards;
  uint32_t next_frame = 0;
  for (size_t i = 0; i < nshards; i++) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < rem ? 1 : 0);
    // Watermarks scale by 1/N: each shard applies Low_f/High_f to its own
    // slice, so reclaim pressure per shard matches the unsharded buffer's.
    shard->low = std::max<size_t>(1, static_cast<size_t>(shard->capacity * options.low_watermark));
    shard->high = std::min(
        shard->capacity,
        std::max<size_t>(2, static_cast<size_t>(shard->capacity * options.high_watermark)));
    shard->free_frames.reserve(shard->capacity);
    // Descending, so PopFreeFrameLocked grants the slice's frames in ascending
    // order (same grant order as the unsharded pool at nshards=1).
    for (size_t f = 0; f < shard->capacity; f++) {
      shard->free_frames.push_back(
          static_cast<uint32_t>(next_frame + shard->capacity - 1 - f));
    }
    next_frame += static_cast<uint32_t>(shard->capacity);
    shard->free_count.store(shard->free_frames.size(), std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
}

DramBufferManager::~DramBufferManager() {
  StopBackgroundWriteback();
  // Entries never flushed or discarded (tests, callers skipping FlushAll) are
  // dropped here; background threads are joined, so no locks are needed.
  for (auto& shard : shards_) {
    for (EntryList* list : {&shard->t1, &shard->t2}) {
      Entry* e = list->head.lrw_next;
      while (e != &list->head) {
        Entry* next = e->lrw_next;
        delete e;
        e = next;
      }
    }
  }
}

void DramBufferManager::StartBackgroundWriteback() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (!threads_.empty()) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  wb_worker_count_ = static_cast<size_t>(std::max(1, options_.writeback_threads));
  wb_running_.store(true, std::memory_order_relaxed);
  for (size_t i = 0; i < wb_worker_count_; i++) {
    threads_.emplace_back([this, i] { WritebackThread(i); });
  }
}

void DramBufferManager::StopBackgroundWriteback() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  {
    std::lock_guard<std::mutex> wb_lock(wb_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wb_cv_.notify_all();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->free_cv.notify_all();
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  wb_running_.store(false, std::memory_order_relaxed);
}

// --- introspection ----------------------------------------------------------------

uint32_t DramBufferManager::ShardOf(uint64_t ino, uint64_t file_block) const {
  // splitmix64-style finalizer over the combined key: adjacent blocks of one
  // file spread across shards, so a single hot file still scales.
  uint64_t h = ino * 0x9e3779b97f4a7c15ull + file_block;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  return static_cast<uint32_t>(h) & shard_mask_;
}

size_t DramBufferManager::shard_capacity(uint32_t shard) const {
  return shards_[shard]->capacity;
}

size_t DramBufferManager::free_blocks() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->free_count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::buffer_hits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.hits.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::buffer_misses() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.misses.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::writeback_blocks() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.writeback_blocks.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::writeback_lines() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.writeback_lines.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::fetched_lines() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.fetched_lines.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::stall_count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.stalls.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::lock_contended() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.lock_contended.load(std::memory_order_relaxed);
  return total;
}

// --- frame slice ------------------------------------------------------------------

uint32_t DramBufferManager::PopFreeFrameLocked(Shard& s) {
  const uint32_t frame = s.free_frames.back();
  s.free_frames.pop_back();
  s.free_count.store(s.free_frames.size(), std::memory_order_relaxed);
  if (s.free_frames.size() < s.low) {
    // Crossing Low_f: wake the engine now instead of waiting out the period.
    KickWriteback();
  }
  return frame;
}

void DramBufferManager::PushFreeFrameLocked(Shard& s, uint32_t frame) {
  s.free_frames.push_back(frame);
  s.free_count.store(s.free_frames.size(), std::memory_order_relaxed);
}

// --- residency lists --------------------------------------------------------------

void DramBufferManager::ListUnlink(EntryList& list, Entry* e) {
  e->lrw_prev->lrw_next = e->lrw_next;
  e->lrw_next->lrw_prev = e->lrw_prev;
  e->lrw_prev = e->lrw_next = nullptr;
  list.size--;
}

void DramBufferManager::ListPushMru(EntryList& list, Entry* e) {
  // Tail of the list (head.prev) is the most-recently-written position.
  e->lrw_prev = list.head.lrw_prev;
  e->lrw_next = &list.head;
  list.head.lrw_prev->lrw_next = e;
  list.head.lrw_prev = e;
  list.size++;
}

// --- replacement policy hooks ------------------------------------------------------

void DramBufferManager::GhostTrimLocked(std::list<uint64_t>& fifo,
                                        std::unordered_set<uint64_t>& set, size_t limit) {
  while (fifo.size() > limit) {
    set.erase(fifo.front());
    fifo.pop_front();
  }
}

void DramBufferManager::OnInsertLocked(Shard& s, Entry* e) {
  e->freq = 1;
  const uint64_t key = GhostKey(*e);
  switch (options_.replacement) {
    case HinfsOptions::Replacement::kArc:
      // ARC: a ghost hit means this block was recently evicted; adapt p and
      // admit straight into the frequent list.
      if (s.b1.erase(key) > 0) {
        const size_t delta =
            std::max<size_t>(1, s.b2.size() / std::max<size_t>(s.b1.size(), 1));
        s.arc_p = std::min(s.capacity, s.arc_p + delta);
        e->arc_list = 2;
        ListPushMru(s.t2, e);
        return;
      }
      if (s.b2.erase(key) > 0) {
        const size_t delta =
            std::max<size_t>(1, s.b1.size() / std::max<size_t>(s.b2.size(), 1));
        s.arc_p = s.arc_p > delta ? s.arc_p - delta : 0;
        e->arc_list = 2;
        ListPushMru(s.t2, e);
        return;
      }
      break;
    case HinfsOptions::Replacement::kTwoQ:
      // 2Q: a block seen in the A1out ghost queue is hot — admit into Am (t2).
      if (s.b1.erase(key) > 0) {
        e->arc_list = 2;
        ListPushMru(s.t2, e);
        return;
      }
      break;
    default:
      break;
  }
  e->arc_list = 1;
  ListPushMru(s.t1, e);
}

void DramBufferManager::OnWriteHitLocked(Shard& s, Entry* e) {
  e->freq++;
  switch (options_.replacement) {
    case HinfsOptions::Replacement::kLrw:
      ListUnlink(s.t1, e);
      ListPushMru(s.t1, e);
      break;
    case HinfsOptions::Replacement::kFifo:
    case HinfsOptions::Replacement::kLfu:
      break;  // FIFO: position fixed; LFU: the freq bump is the update
    case HinfsOptions::Replacement::kArc:
      // A re-reference promotes to (or refreshes within) T2.
      if (e->arc_list == 1) {
        ListUnlink(s.t1, e);
        e->arc_list = 2;
      } else {
        ListUnlink(s.t2, e);
      }
      ListPushMru(s.t2, e);
      break;
    case HinfsOptions::Replacement::kTwoQ:
      // 2Q: re-references inside the probationary A1in queue do NOT promote
      // (that is the point of A1in: correlated re-writes stay probationary);
      // re-references in Am refresh its LRU position.
      if (e->arc_list == 2) {
        ListUnlink(s.t2, e);
        ListPushMru(s.t2, e);
      }
      break;
  }
}

void DramBufferManager::GhostRecordLocked(Shard& s, Entry* e) {
  const uint64_t key = GhostKey(*e);
  if (options_.replacement == HinfsOptions::Replacement::kArc) {
    if (e->arc_list == 1) {
      if (s.b1.insert(key).second) {
        s.b1_fifo.push_back(key);
      }
    } else {
      if (s.b2.insert(key).second) {
        s.b2_fifo.push_back(key);
      }
    }
    GhostTrimLocked(s.b1_fifo, s.b1, s.capacity);
    GhostTrimLocked(s.b2_fifo, s.b2, s.capacity);
    return;
  }
  if (options_.replacement == HinfsOptions::Replacement::kTwoQ && e->arc_list == 1) {
    // Only A1in victims enter the A1out ghost queue (Kout = capacity / 2).
    if (s.b1.insert(key).second) {
      s.b1_fifo.push_back(key);
    }
    GhostTrimLocked(s.b1_fifo, s.b1, std::max<size_t>(1, s.capacity / 2));
  }
}

std::vector<DramBufferManager::Entry*> DramBufferManager::PickVictimsLocked(Shard& s,
                                                                            size_t want) {
  std::vector<Entry*> victims;
  if (want == 0) {
    return victims;
  }
  auto take_from = [&](EntryList& list) {
    for (Entry* e = list.head.lrw_next; e != &list.head && victims.size() < want;
         e = e->lrw_next) {
      if (!e->writing) {
        e->writing = true;
        GhostRecordLocked(s, e);
        victims.push_back(e);
      }
    }
  };

  switch (options_.replacement) {
    case HinfsOptions::Replacement::kLrw:
    case HinfsOptions::Replacement::kFifo:
      take_from(s.t1);
      break;
    case HinfsOptions::Replacement::kLfu: {
      // Least-frequently-written first; ties broken by write recency.
      std::vector<Entry*> candidates;
      for (Entry* e = s.t1.head.lrw_next; e != &s.t1.head; e = e->lrw_next) {
        if (!e->writing) {
          candidates.push_back(e);
        }
      }
      const size_t n = std::min(want, candidates.size());
      std::partial_sort(candidates.begin(), candidates.begin() + n, candidates.end(),
                        [](const Entry* a, const Entry* b) {
                          if (a->freq != b->freq) {
                            return a->freq < b->freq;
                          }
                          return a->last_written_ns < b->last_written_ns;
                        });
      for (size_t i = 0; i < n; i++) {
        candidates[i]->writing = true;
        victims.push_back(candidates[i]);
      }
      break;
    }
    case HinfsOptions::Replacement::kTwoQ: {
      // 2Q: evict from the probationary A1in while it exceeds its share
      // (Kin = 25 % of the shard), recording victims in the A1out ghost
      // queue; otherwise evict the LRU of Am.
      const size_t kin = std::max<size_t>(1, s.capacity / 4);
      while (victims.size() < want) {
        const size_t before = victims.size();
        if (s.t1.size > kin || s.t2.size == 0) {
          take_from(s.t1);
          if (victims.size() == before) {
            take_from(s.t2);
          }
        } else {
          take_from(s.t2);
          if (victims.size() == before) {
            take_from(s.t1);
          }
        }
        if (victims.size() == before) {
          break;
        }
      }
      break;
    }
    case HinfsOptions::Replacement::kArc: {
      // REPLACE: shrink T1 while it exceeds the adaptive target p, else T2.
      while (victims.size() < want) {
        const size_t before = victims.size();
        if (s.t1.size > s.arc_p && s.t1.size > 0) {
          take_from(s.t1);
          if (victims.size() == before) {
            take_from(s.t2);
          }
        } else {
          take_from(s.t2);
          if (victims.size() == before) {
            take_from(s.t1);
          }
        }
        if (victims.size() == before) {
          break;  // everything evictable is already in flight
        }
        // take_from may overshoot the per-iteration intent; the loop exits via
        // the want bound either way.
      }
      break;
    }
  }
  return victims;
}

// --- index ----------------------------------------------------------------------

DramBufferManager::Entry* DramBufferManager::FindLocked(Shard& s, uint64_t ino,
                                                        uint64_t file_block) {
  auto it = s.index.find(ino);
  if (it == s.index.end()) {
    return nullptr;
  }
  Entry** slot = it->second->Find(file_block);
  return slot == nullptr ? nullptr : *slot;
}

Result<DramBufferManager::Entry*> DramBufferManager::CreateLocked(
    Shard& s, std::unique_lock<std::mutex>& lock, uint64_t ino, uint64_t file_block,
    uint64_t nvmm_addr) {
  while (s.free_frames.empty()) {
    s.stats.stalls.fetch_add(1, std::memory_order_relaxed);
    KickWriteback();
    if (!wb_running_.load(std::memory_order_relaxed)) {
      // No background engine (unit tests, or stopped during unmount): reclaim
      // one victim inline from this shard.
      std::vector<Entry*> victims = PickVictimsLocked(s, 1);
      if (victims.empty()) {
        return Status(ErrorCode::kNoMemory, "buffer exhausted with all frames in flight");
      }
      lock.unlock();
      HINFS_RETURN_IF_ERROR(FlushEntries(s, std::move(victims)));
      lock.lock();
      continue;
    }
    s.free_cv.wait(lock, [&s, this] {
      return !s.free_frames.empty() || stop_.load(std::memory_order_relaxed);
    });
    if (stop_.load(std::memory_order_relaxed) && s.free_frames.empty()) {
      return Status(ErrorCode::kBusy, "buffer shutting down");
    }
  }

  auto* e = new Entry();
  e->ino = ino;
  e->file_block = file_block;
  e->nvmm_addr = nvmm_addr;
  e->dram_index = PopFreeFrameLocked(s);
  s.resident++;
  if (nvmm_addr == kNoNvmmAddr) {
    // A block with no NVMM backing is a hole: its correct content is zeros, so
    // the whole frame is valid from the start.
    std::memset(DataFor(*e), 0, kBlockSize);
    e->valid = ~0ull;
  }
  auto it = s.index.find(ino);
  if (it == s.index.end()) {
    it = s.index.emplace(ino, std::make_unique<BTreeMap<Entry*>>()).first;
  }
  it->second->Insert(file_block, e);
  OnInsertLocked(s, e);
  return e;
}

void DramBufferManager::DetachLocked(Shard& s, Entry* e) {
  auto it = s.index.find(e->ino);
  if (it != s.index.end()) {
    it->second->Erase(e->file_block);
    if (it->second->empty()) {
      s.index.erase(it);
    }
  }
  ListUnlink(e->arc_list == 2 ? s.t2 : s.t1, e);
  PushFreeFrameLocked(s, e->dram_index);
  s.resident--;
  delete e;
}

// --- data paths -----------------------------------------------------------------

Result<uint32_t> DramBufferManager::Write(uint64_t ino, uint64_t file_block, size_t offset,
                                          const void* src, size_t len, uint64_t nvmm_addr) {
  if (offset + len > kBlockSize || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "buffered write crosses block");
  }
  Shard& s = ShardForKey(ino, file_block);
  std::unique_lock<std::mutex> lock = LockShard(s);

  Entry* e;
  while (true) {
    e = FindLocked(s, ino, file_block);
    if (e == nullptr) {
      s.stats.misses.fetch_add(1, std::memory_order_relaxed);
      HINFS_ASSIGN_OR_RETURN(e, CreateLocked(s, lock, ino, file_block, nvmm_addr));
      break;
    }
    if (!e->writing) {
      s.stats.hits.fetch_add(1, std::memory_order_relaxed);
      OnWriteHitLocked(s, e);
      break;
    }
    // The block is mid-writeback: wait for the flush to retire it, then buffer
    // the write in a fresh frame.
    s.write_done_cv.wait(lock);
  }
  if (e->nvmm_addr == kNoNvmmAddr && nvmm_addr != kNoNvmmAddr) {
    e->nvmm_addr = nvmm_addr;
  }

  const uint64_t touch = LineMaskFor(offset, len);
  if (options_.clfw) {
    // CLFW: fetch only the partially-overwritten lines that are not yet valid.
    const uint64_t partial = touch & ~FullLineMaskFor(offset, len);
    uint64_t need_fetch = partial & ~e->valid;
    LineRun run;
    size_t from = 0;
    while (NextRun(need_fetch, from, &run)) {
      uint8_t* dst = DataFor(*e) + run.first_line * kCachelineSize;
      if (e->nvmm_addr != kNoNvmmAddr) {
        HINFS_RETURN_IF_ERROR(nvmm_->Load(e->nvmm_addr + run.first_line * kCachelineSize, dst,
                                          run.count * kCachelineSize));
      } else {
        std::memset(dst, 0, run.count * kCachelineSize);
      }
      s.stats.fetched_lines.fetch_add(run.count, std::memory_order_relaxed);
      from = run.first_line + run.count;
    }
    e->valid |= touch;
    e->dirty |= touch;
  } else {
    // HiNFS-NCLFW: whole-block fetch-before-write and whole-block writeback.
    if (e->valid != ~0ull) {
      if (e->nvmm_addr != kNoNvmmAddr) {
        HINFS_RETURN_IF_ERROR(nvmm_->Load(e->nvmm_addr, DataFor(*e), kBlockSize));
      } else {
        std::memset(DataFor(*e), 0, kBlockSize);
      }
      s.stats.fetched_lines.fetch_add(kLinesPerBlock, std::memory_order_relaxed);
      e->valid = ~0ull;
    }
    e->dirty = ~0ull;
  }

  std::memcpy(DataFor(*e) + offset, src, len);
  e->last_written_ns = MonotonicNowNs();
  return static_cast<uint32_t>(CountLines(touch));
}

Result<bool> DramBufferManager::Read(uint64_t ino, uint64_t file_block, size_t offset, void* dst,
                                     size_t len, uint64_t nvmm_addr) {
  if (offset + len > kBlockSize) {
    return Status(ErrorCode::kInvalidArgument, "buffered read crosses block");
  }
  Shard& s = ShardForKey(ino, file_block);
  std::unique_lock<std::mutex> lock = LockShard(s);
  Entry* e = FindLocked(s, ino, file_block);
  if (e == nullptr) {
    return false;
  }

  // Merge: valid lines from DRAM, the rest from NVMM (or zeros for holes), one
  // memcpy per run of identically-sourced lines.
  auto* out = static_cast<uint8_t*>(dst);
  size_t cur = offset;
  const size_t end = offset + len;
  while (cur < end) {
    const size_t line = cur / kCachelineSize;
    const bool in_dram = (e->valid >> line) & 1;
    size_t run_end_line = line;
    while (run_end_line + 1 < kLinesPerBlock &&
           run_end_line + 1 <= (end - 1) / kCachelineSize &&
           (((e->valid >> (run_end_line + 1)) & 1) != 0) == in_dram) {
      run_end_line++;
    }
    const size_t run_end = std::min(end, (run_end_line + 1) * kCachelineSize);
    const size_t chunk = run_end - cur;
    if (in_dram) {
      std::memcpy(out, DataFor(*e) + cur, chunk);
    } else if (e->nvmm_addr != kNoNvmmAddr) {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(e->nvmm_addr + cur, out, chunk));
    } else if (nvmm_addr != kNoNvmmAddr) {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(nvmm_addr + cur, out, chunk));
    } else {
      std::memset(out, 0, chunk);
    }
    out += chunk;
    cur = run_end;
  }
  return true;
}

bool DramBufferManager::Contains(uint64_t ino, uint64_t file_block) {
  Shard& s = ShardForKey(ino, file_block);
  std::unique_lock<std::mutex> lock = LockShard(s);
  return FindLocked(s, ino, file_block) != nullptr;
}

// --- flushing -------------------------------------------------------------------

Result<uint32_t> DramBufferManager::FlushEntryData(Shard& s, Entry* e) {
  uint64_t flush_mask = e->dirty;
  if (e->nvmm_addr == kNoNvmmAddr) {
    if (e->dirty == 0) {
      return 0u;  // clean hole; nothing to persist
    }
    Result<uint64_t> ensured = ensure_block_(e->ino, e->file_block);
    if (!ensured.ok()) {
      if (ensured.status().code() == ErrorCode::kNotFound) {
        // The file was unlinked while this block waited for writeback: its
        // data is dropped, exactly like any other write to a deleted file.
        return 0u;
      }
      return ensured.status();
    }
    const uint64_t addr = *ensured;
    {
      std::unique_lock<std::mutex> lock = LockShard(s);
      e->nvmm_addr = addr;
    }
    // A freshly allocated NVMM block contains garbage: persist the full frame
    // (the non-dirty lines are the zeros this hole is defined to contain).
    flush_mask = ~0ull;
  }
  if (flush_mask == 0) {
    return 0u;
  }

  uint32_t lines = 0;
  LineRun run;
  size_t from = 0;
  while (NextRun(flush_mask, from, &run)) {
    const size_t off = run.first_line * kCachelineSize;
    const size_t bytes = run.count * kCachelineSize;
    HINFS_RETURN_IF_ERROR(nvmm_->Store(e->nvmm_addr + off, DataFor(*e) + off, bytes));
    HINFS_RETURN_IF_ERROR(nvmm_->Flush(e->nvmm_addr + off, bytes));
    lines += static_cast<uint32_t>(run.count);
    from = run.first_line + run.count;
  }
  nvmm_->Fence();
  return lines;
}

Status DramBufferManager::FlushEntries(Shard& s, std::vector<Entry*> victims) {
  uint64_t lines = 0;
  Status st = OkStatus();
  for (Entry* e : victims) {
    Result<uint32_t> flushed = FlushEntryData(s, e);
    if (!flushed.ok()) {
      st = flushed.status();
      break;
    }
    lines += *flushed;
  }
  {
    std::unique_lock<std::mutex> lock = LockShard(s);
    for (Entry* e : victims) {
      DetachLocked(s, e);
    }
  }
  s.stats.writeback_blocks.fetch_add(victims.size(), std::memory_order_relaxed);
  s.stats.writeback_lines.fetch_add(lines, std::memory_order_relaxed);
  s.free_cv.notify_all();
  s.write_done_cv.notify_all();
  return st;
}

Status DramBufferManager::DrainShard(Shard& s, bool all, uint64_t ino) {
  while (true) {
    std::vector<Entry*> victims;
    bool any_in_flight = false;
    {
      std::unique_lock<std::mutex> lock = LockShard(s);
      auto collect = [&](BTreeMap<Entry*>& tree) {
        tree.ForEach([&](uint64_t, Entry*& e) {
          if (e->writing) {
            any_in_flight = true;
          } else {
            e->writing = true;
            victims.push_back(e);
          }
          return true;
        });
      };
      if (all) {
        for (auto& [file, tree] : s.index) {
          collect(*tree);
        }
      } else {
        auto it = s.index.find(ino);
        if (it == s.index.end()) {
          return OkStatus();
        }
        collect(*it->second);
      }
      if (victims.empty() && any_in_flight) {
        s.write_done_cv.wait(lock);
        continue;
      }
    }
    if (victims.empty()) {
      return OkStatus();
    }
    HINFS_RETURN_IF_ERROR(FlushEntries(s, std::move(victims)));
  }
}

Status DramBufferManager::FlushFile(uint64_t ino) {
  // Fixed shard order, draining one shard completely (holding at most its own
  // mutex) before the next: the documented deadlock-free lock discipline.
  for (auto& shard : shards_) {
    HINFS_RETURN_IF_ERROR(DrainShard(*shard, /*all=*/false, ino));
  }
  return OkStatus();
}

Status DramBufferManager::FlushBlock(uint64_t ino, uint64_t file_block) {
  Shard& s = ShardForKey(ino, file_block);
  while (true) {
    std::vector<Entry*> victims;
    {
      std::unique_lock<std::mutex> lock = LockShard(s);
      Entry* e = FindLocked(s, ino, file_block);
      if (e == nullptr) {
        return OkStatus();
      }
      if (e->writing) {
        s.write_done_cv.wait(lock);
        continue;
      }
      e->writing = true;
      victims.push_back(e);
    }
    return FlushEntries(s, std::move(victims));
  }
}

Status DramBufferManager::FlushAll() {
  for (auto& shard : shards_) {
    HINFS_RETURN_IF_ERROR(DrainShard(*shard, /*all=*/true, 0));
  }
  return OkStatus();
}

Status DramBufferManager::DiscardFile(uint64_t ino, uint64_t from_block) {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::unique_lock<std::mutex> lock = LockShard(s);
    bool done = false;
    while (!done) {
      auto it = s.index.find(ino);
      if (it == s.index.end()) {
        break;
      }
      std::vector<Entry*> drop;
      bool any_in_flight = false;
      it->second->ForEach([&](uint64_t block, Entry*& e) {
        if (block < from_block) {
          return true;
        }
        if (e->writing) {
          any_in_flight = true;
        } else {
          drop.push_back(e);
        }
        return true;
      });
      for (Entry* e : drop) {
        DetachLocked(s, e);  // writes to deleted files are simply dropped
      }
      if (!drop.empty()) {
        s.free_cv.notify_all();
      }
      if (!any_in_flight) {
        done = true;
      } else {
        s.write_done_cv.wait(lock);
      }
    }
  }
  return OkStatus();
}

// --- background engine -------------------------------------------------------------

void DramBufferManager::KickWriteback() {
  // Empty-critical-section handshake: a worker between its predicate check and
  // its wait holds wb_mu_, so locking it here orders this notify after the
  // worker has actually blocked. wb_mu_ is a leaf lock (callers may hold a
  // shard mutex; workers never take a shard mutex while holding wb_mu_).
  { std::lock_guard<std::mutex> lock(wb_mu_); }
  wb_cv_.notify_all();
}

bool DramBufferManager::AnyAssignedShardLow(size_t worker) const {
  for (size_t i = worker; i < shards_.size(); i += wb_worker_count_) {
    const Shard& s = *shards_[i];
    if (s.free_count.load(std::memory_order_relaxed) < s.low) {
      return true;
    }
  }
  return false;
}

void DramBufferManager::ProcessShard(Shard& s) {
  std::vector<Entry*> victims;
  {
    std::unique_lock<std::mutex> lock = LockShard(s);
    // Phase 1: reclaim in policy order until this shard's free > High_f.
    if (s.free_frames.size() < s.high) {
      victims = PickVictimsLocked(s, s.high - s.free_frames.size());
    }

    // Phase 2: write back blocks that have been dirty for longer than the
    // staleness bound (paper: 30 s).
    const uint64_t now = MonotonicNowNs();
    const uint64_t stale_ns = options_.staleness_ms * 1'000'000ull;
    for (EntryList* list : {&s.t1, &s.t2}) {
      for (Entry* e = list->head.lrw_next; e != &list->head; e = e->lrw_next) {
        if (!e->writing && now - e->last_written_ns > stale_ns) {
          e->writing = true;
          GhostRecordLocked(s, e);
          victims.push_back(e);
        }
      }
    }
  }
  if (!victims.empty()) {
    (void)FlushEntries(s, std::move(victims));
  }
}

void DramBufferManager::WritebackThread(size_t worker) {
  // Worker w owns shards {w, w+T, w+2T, ...}: watermark checks and victim
  // picking are per shard, and the workers cover disjoint slices.
  std::unique_lock<std::mutex> lock(wb_mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    wb_cv_.wait_for(lock, std::chrono::milliseconds(options_.writeback_period_ms),
                    [this, worker] {
                      return stop_.load(std::memory_order_relaxed) ||
                             AnyAssignedShardLow(worker);
                    });
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    lock.unlock();
    for (size_t i = worker; i < shards_.size(); i += wb_worker_count_) {
      if (stop_.load(std::memory_order_relaxed)) {
        break;
      }
      ProcessShard(*shards_[i]);
    }
    lock.lock();
  }
}

}  // namespace hinfs
