#include "src/fs/pmfs/journal.h"

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/common/logging.h"

namespace hinfs {

Journal::Journal(NvmmDevice* nvmm, uint64_t ring_off, uint64_t ring_bytes)
    : nvmm_(nvmm), ring_off_(ring_off), capacity_(ring_bytes / sizeof(JournalEntry)) {}

Status Journal::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  JournalEntry zero{};
  for (uint64_t i = 0; i < capacity_; i++) {
    HINFS_RETURN_IF_ERROR(
        nvmm_->StorePersistent(ring_off_ + i * sizeof(JournalEntry), &zero, sizeof(zero)));
  }
  head_ = 0;
  generation_ = 1;
  next_txn_id_ = 1;
  return OkStatus();
}

Transaction Journal::Begin() {
  std::unique_lock<std::mutex> lock(mu_);
  // Admission control near the ring end: a wrap retires the whole current
  // generation at once, which is only safe with no live transactions. Rather
  // than letting appenders block each other at the wrap point (deadlock), new
  // transactions drain here; the active ones finish inside the margin between
  // drain_threshold and capacity, and the wrap happens with active_txns_ == 0.
  const uint64_t drain_threshold = DrainThreshold();
  wrap_cv_.wait(lock, [&] { return head_ < drain_threshold || active_txns_ == 0; });
  if (head_ >= drain_threshold && active_txns_ == 0) {
    head_ = 0;
    generation_++;
  }
  active_txns_++;
  return Transaction(this, next_txn_id_++);
}

uint64_t Journal::DrainThreshold() const {
  // The margin must comfortably hold the remaining appends of every already-
  // admitted transaction (typical transactions log well under 100 entries).
  const uint64_t margin = std::min(capacity_ / 2, std::max<uint64_t>(capacity_ / 4, 4096));
  return capacity_ > margin ? capacity_ - margin : 1;
}

Status Journal::AppendEntry(const JournalEntry& proto, bool is_commit) {
  std::unique_lock<std::mutex> lock(mu_);
  if (head_ == capacity_) {
    // Backstop for a pathological transaction that overran the entire drain
    // margin on its own: it cannot retire its own live undo entries.
    if (active_txns_ <= 1) {
      head_ = 0;
      generation_++;
    } else {
      wrap_cv_.wait(lock, [this] { return active_txns_ <= 1 || head_ < capacity_; });
      if (head_ == capacity_) {
        head_ = 0;
        generation_++;
      }
    }
  }
  JournalEntry e = proto;
  e.generation = generation_;
  e.valid = 0;
  const uint64_t addr = ring_off_ + head_ * sizeof(JournalEntry);
  head_++;

  // Write the entry body first, then set the valid flag with a second store to
  // the same cacheline. Same-cacheline stores are not reordered, so a torn
  // entry is always detectable as valid != generation.
  HINFS_RETURN_IF_ERROR(nvmm_->Store(addr, &e, sizeof(e)));
  const uint32_t valid = e.generation;
  HINFS_RETURN_IF_ERROR(
      nvmm_->Store(addr + offsetof(JournalEntry, valid), &valid, sizeof(valid)));
  HINFS_RETURN_IF_ERROR(nvmm_->Flush(addr, sizeof(e)));
  if (!skip_append_fence_) {
    nvmm_->Fence();
  }
  if (is_commit) {
    active_txns_--;
    wrap_cv_.notify_all();
  }
  return OkStatus();
}

Status Journal::AppendUndo(uint64_t txn_id, uint64_t addr, size_t len) {
  // Split the old value into payload-sized chunks.
  uint64_t cur = addr;
  size_t remaining = len;
  while (remaining > 0) {
    const size_t chunk = remaining < kJournalEntryPayload ? remaining : kJournalEntryPayload;
    JournalEntry e{};
    e.txn_id = txn_id;
    e.addr = cur;
    e.len = static_cast<uint16_t>(chunk);
    e.type = kJournalUndo;
    // Word-aligned metadata (inodes, dirents, radix slots) may be updated in
    // place by concurrent atomic 8-byte stores; read it word-atomically so the
    // logged image is torn-free per word.
    if (cur % sizeof(uint64_t) == 0 && chunk % sizeof(uint64_t) == 0) {
      HINFS_RETURN_IF_ERROR(nvmm_->LoadAtomic(cur, e.data, chunk));
    } else {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(cur, e.data, chunk));
    }
    HINFS_RETURN_IF_ERROR(AppendEntry(e, /*is_commit=*/false));
    cur += chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

Status Journal::AppendCommit(uint64_t txn_id) {
  JournalEntry e{};
  e.txn_id = txn_id;
  e.type = kJournalCommit;
  return AppendEntry(e, /*is_commit=*/true);
}

Result<uint64_t> Journal::Recover() {
  std::lock_guard<std::mutex> lock(mu_);

  // Pass 1: read all entries, find the live generation (the max generation with
  // a matching valid flag), and collect committed transaction ids.
  std::vector<JournalEntry> entries(capacity_);
  uint32_t live_gen = 0;
  for (uint64_t i = 0; i < capacity_; i++) {
    HINFS_RETURN_IF_ERROR(
        nvmm_->Load(ring_off_ + i * sizeof(JournalEntry), &entries[i], sizeof(JournalEntry)));
    const JournalEntry& e = entries[i];
    if (e.generation != 0 && e.valid == e.generation && e.generation > live_gen) {
      live_gen = e.generation;
    }
  }

  std::set<uint64_t> committed;
  uint64_t max_txn = 0;
  for (const JournalEntry& e : entries) {
    if (e.generation != live_gen || e.valid != e.generation) {
      continue;
    }
    max_txn = std::max(max_txn, e.txn_id);
    if (e.type == kJournalCommit) {
      committed.insert(e.txn_id);
    }
  }

  // Pass 2: undo uncommitted transactions in reverse append order so earlier
  // old values win if a region was logged twice.
  std::set<uint64_t> rolled_back;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const JournalEntry& e = *it;
    if (e.generation != live_gen || e.valid != e.generation || e.type != kJournalUndo) {
      continue;
    }
    if (committed.count(e.txn_id) != 0) {
      continue;
    }
    HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(e.addr, e.data, e.len));
    rolled_back.insert(e.txn_id);
  }

  // Invalidate the processed entries so a second recovery (or a crash before
  // the first post-mount wrap) cannot replay them, then reset the ring.
  {
    JournalEntry zero{};
    for (uint64_t i = 0; i < capacity_; i++) {
      if (entries[i].generation != 0) {
        HINFS_RETURN_IF_ERROR(
            nvmm_->StorePersistent(ring_off_ + i * sizeof(JournalEntry), &zero, sizeof(zero)));
      }
    }
  }
  head_ = 0;
  generation_ = live_gen + 1;
  next_txn_id_ = max_txn + 1;
  active_txns_ = 0;
  if (!rolled_back.empty()) {
    HINFS_LOG_INFO("journal recovery rolled back %zu transaction(s)", rolled_back.size());
  }
  return static_cast<uint64_t>(rolled_back.size());
}

Status Transaction::LogOldValue(uint64_t addr, size_t len) {
  return journal_->AppendUndo(id_, addr, len);
}

Status Transaction::Commit() { return journal_->AppendCommit(id_); }

}  // namespace hinfs
