# Empty dependencies file for hinfs_pagecache.
# This may be replaced when dependencies are built.
