file(REMOVE_RECURSE
  "libhinfs_blockfs.a"
)
