// FsApi: the POSIX-like syscall surface, abstracted away from any one
// front-end. Vfs (in-process) and server::Client (over a socket, see
// src/server/client.h) both present this interface, so the filebench
// personality loops in src/workloads can replay identically in-process and
// over the wire — fsload drives the exact same flowop mix hinfsd serves.
//
// The surface deliberately mirrors Vfs's public API one-to-one (same
// signatures, same Result/Status conventions); VfsApi below is a zero-state
// forwarding adapter. Implementations must be safe to call from multiple
// threads (Vfs is; a Client is locked per call).

#ifndef SRC_VFS_FS_API_H_
#define SRC_VFS_FS_API_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/vfs/vfs.h"

namespace hinfs {

class FsApi {
 public:
  virtual ~FsApi() = default;

  // --- fd-based ---------------------------------------------------------------
  virtual Result<int> Open(std::string_view path, uint32_t flags) = 0;
  virtual Status Close(int fd) = 0;
  virtual Result<size_t> Read(int fd, void* dst, size_t len) = 0;
  virtual Result<size_t> Write(int fd, const void* src, size_t len) = 0;
  virtual Result<size_t> Pread(int fd, void* dst, size_t len, uint64_t offset) = 0;
  virtual Result<size_t> Pwrite(int fd, const void* src, size_t len, uint64_t offset) = 0;
  virtual Result<uint64_t> Seek(int fd, uint64_t offset) = 0;
  virtual Status Fsync(int fd) = 0;
  // fdatasync(2): durability for the file's data (and size), allowed to skip
  // pure timestamp metadata. Front-ends map both onto Sync(fd, SyncOptions).
  virtual Status Fdatasync(int fd) = 0;
  virtual Status Sync(int fd, const SyncOptions& options) = 0;
  virtual Status Ftruncate(int fd, uint64_t size) = 0;
  virtual Result<InodeAttr> Fstat(int fd) = 0;

  // --- path-based -------------------------------------------------------------
  virtual Status Mkdir(std::string_view path) = 0;
  virtual Status Rmdir(std::string_view path) = 0;
  virtual Status Unlink(std::string_view path) = 0;
  virtual Status Rename(std::string_view from, std::string_view to) = 0;
  virtual Result<InodeAttr> Stat(std::string_view path) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(std::string_view path) = 0;
  // true/false for present/absent; a Status for real failures (invalid path,
  // I/O error) rather than swallowing them into false.
  virtual Result<bool> Exists(std::string_view path) = 0;

  // --- whole-FS ---------------------------------------------------------------
  virtual Status SyncFs() = 0;

  // Convenience helpers built on the virtual surface (same behavior as the
  // Vfs versions).
  Status WriteFile(std::string_view path, std::string_view contents);
  Result<std::string> ReadFileToString(std::string_view path);
};

// In-process implementation: forwards every call to a Vfs. Stateless, so one
// adapter may be shared by any number of threads.
class VfsApi final : public FsApi {
 public:
  explicit VfsApi(Vfs* vfs) : vfs_(vfs) {}

  Result<int> Open(std::string_view path, uint32_t flags) override {
    return vfs_->Open(path, flags);
  }
  Status Close(int fd) override { return vfs_->Close(fd); }
  Result<size_t> Read(int fd, void* dst, size_t len) override {
    return vfs_->Read(fd, dst, len);
  }
  Result<size_t> Write(int fd, const void* src, size_t len) override {
    return vfs_->Write(fd, src, len);
  }
  Result<size_t> Pread(int fd, void* dst, size_t len, uint64_t offset) override {
    return vfs_->Pread(fd, dst, len, offset);
  }
  Result<size_t> Pwrite(int fd, const void* src, size_t len, uint64_t offset) override {
    return vfs_->Pwrite(fd, src, len, offset);
  }
  Result<uint64_t> Seek(int fd, uint64_t offset) override { return vfs_->Seek(fd, offset); }
  Status Fsync(int fd) override { return vfs_->Fsync(fd); }
  Status Fdatasync(int fd) override { return vfs_->Fdatasync(fd); }
  Status Sync(int fd, const SyncOptions& options) override { return vfs_->Sync(fd, options); }
  Status Ftruncate(int fd, uint64_t size) override { return vfs_->Ftruncate(fd, size); }
  Result<InodeAttr> Fstat(int fd) override { return vfs_->Fstat(fd); }

  Status Mkdir(std::string_view path) override { return vfs_->Mkdir(path); }
  Status Rmdir(std::string_view path) override { return vfs_->Rmdir(path); }
  Status Unlink(std::string_view path) override { return vfs_->Unlink(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return vfs_->Rename(from, to);
  }
  Result<InodeAttr> Stat(std::string_view path) override { return vfs_->Stat(path); }
  Result<std::vector<DirEntry>> ReadDir(std::string_view path) override {
    return vfs_->ReadDir(path);
  }
  Result<bool> Exists(std::string_view path) override { return vfs_->Exists(path); }

  Status SyncFs() override { return vfs_->SyncFs(); }

  Vfs* vfs() { return vfs_; }

 private:
  Vfs* vfs_;
};

}  // namespace hinfs

#endif  // SRC_VFS_FS_API_H_
