#include "src/vfs/vfs.h"

#include <algorithm>
#include <utility>

namespace hinfs {

Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(ErrorCode::kInvalidArgument, "path must be absolute");
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) {
      j = path.size();
    }
    if (j > i) {
      std::string_view comp = path.substr(i, j - i);
      if (comp.size() > kMaxNameLen) {
        return Status(ErrorCode::kNameTooLong, std::string(comp));
      }
      if (comp == "." || comp == "..") {
        return Status(ErrorCode::kInvalidArgument, "dot components not supported");
      }
      parts.emplace_back(comp);
    }
    i = j + 1;
  }
  return parts;
}

Vfs::Vfs(FileSystem* fs, bool sync_mount) : fs_(fs), sync_mount_(sync_mount) {}

Vfs::~Vfs() = default;

// --- fd table -------------------------------------------------------------------

void Vfs::FdInsertIntoSlots(std::vector<FdShard::Slot>& slots, int fd,
                            std::shared_ptr<FdState> state) {
  size_t i = ProbeStart(fd, slots.size());
  while (slots[i].fd != FdShard::kEmpty && slots[i].fd != FdShard::kTombstone) {
    i = (i + 1) & (slots.size() - 1);
  }
  slots[i].fd = fd;
  slots[i].state = std::move(state);
}

void Vfs::FdInsert(int fd, std::shared_ptr<FdState> state) {
  FdShard& s = ShardForFd(fd);
  std::lock_guard<std::mutex> lock(s.mu);
  // Keep the probe chains short: grow (dropping tombstones) at 3/4 occupancy.
  if ((s.occupied + 1) * 4 >= s.slots.size() * 3) {
    std::vector<FdShard::Slot> bigger(s.slots.size() * 2);
    for (FdShard::Slot& slot : s.slots) {
      if (slot.fd != FdShard::kEmpty && slot.fd != FdShard::kTombstone) {
        FdInsertIntoSlots(bigger, slot.fd, std::move(slot.state));
      }
    }
    s.slots = std::move(bigger);
    s.occupied = s.used;
  }
  FdInsertIntoSlots(s.slots, fd, std::move(state));
  s.used++;
  s.occupied++;  // may double-count a reused tombstone; only hastens growth
}

std::shared_ptr<Vfs::FdState> Vfs::FdLookup(int fd) {
  if (fd < 3) {
    return nullptr;
  }
  FdShard& s = ShardForFd(fd);
  std::lock_guard<std::mutex> lock(s.mu);
  size_t i = ProbeStart(fd, s.slots.size());
  while (s.slots[i].fd != FdShard::kEmpty) {
    if (s.slots[i].fd == fd) {
      return s.slots[i].state;
    }
    i = (i + 1) & (s.slots.size() - 1);
  }
  return nullptr;
}

size_t Vfs::OpenFdCount() const {
  size_t n = 0;
  for (const FdShard& s : fd_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.used;
  }
  return n;
}

bool Vfs::FdErase(int fd) {
  if (fd < 3) {
    return false;
  }
  FdShard& s = ShardForFd(fd);
  std::lock_guard<std::mutex> lock(s.mu);
  size_t i = ProbeStart(fd, s.slots.size());
  while (s.slots[i].fd != FdShard::kEmpty) {
    if (s.slots[i].fd == fd) {
      s.slots[i].fd = FdShard::kTombstone;
      s.slots[i].state.reset();
      s.used--;
      return true;
    }
    i = (i + 1) & (s.slots.size() - 1);
  }
  return false;
}

// --- dcache ---------------------------------------------------------------------

Result<uint64_t> Vfs::LookupCached(uint64_t dir_ino, std::string_view name) {
  const DentryRef ref{dir_ino, name};
  DcacheShard& s = ShardForDentry(ref);
  {
    std::shared_lock lock(s.mu);
    auto it = s.map.find(ref);  // heterogeneous: no key allocation on a hit
    if (it != s.map.end()) {
      return it->second;
    }
  }
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, fs_->Lookup(dir_ino, name));
  {
    std::unique_lock lock(s.mu);
    s.map.insert_or_assign(DentryKey{dir_ino, std::string(name)}, ino);
  }
  return ino;
}

void Vfs::InvalidateDentry(uint64_t dir_ino, std::string_view name) {
  const DentryRef ref{dir_ino, name};
  DcacheShard& s = ShardForDentry(ref);
  std::unique_lock lock(s.mu);
  auto it = s.map.find(ref);
  if (it != s.map.end()) {
    s.map.erase(it);
  }
}

Result<uint64_t> Vfs::Resolve(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  uint64_t ino = kRootIno;
  for (const std::string& comp : parts) {
    HINFS_ASSIGN_OR_RETURN(ino, LookupCached(ino, comp));
  }
  return ino;
}

Result<uint64_t> Vfs::ResolveParent(std::string_view path, std::string* leaf) {
  HINFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Status(ErrorCode::kInvalidArgument, "path has no final component");
  }
  *leaf = parts.back();
  uint64_t ino = kRootIno;
  for (size_t i = 0; i + 1 < parts.size(); i++) {
    HINFS_ASSIGN_OR_RETURN(ino, LookupCached(ino, parts[i]));
  }
  return ino;
}

// --- fd-based syscalls ----------------------------------------------------------

Result<int> Vfs::Open(std::string_view path, uint32_t flags) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));

  uint64_t ino;
  Result<uint64_t> looked = LookupCached(dir_ino, leaf);
  if (looked.ok()) {
    ino = *looked;
  } else if (looked.status().code() == ErrorCode::kNotFound && (flags & kCreate) != 0) {
    Result<uint64_t> created = fs_->Create(dir_ino, leaf, FileType::kRegular);
    if (!created.ok()) {
      return created.status();
    }
    ino = *created;
  } else {
    return looked.status();
  }

  HINFS_ASSIGN_OR_RETURN(InodeAttr attr, fs_->GetAttr(ino));
  if (attr.type == FileType::kDirectory) {
    return Status(ErrorCode::kIsDir, std::string(path));
  }
  if ((flags & kTrunc) != 0 && attr.size > 0) {
    HINFS_RETURN_IF_ERROR(fs_->Truncate(ino, 0));
    attr.size = 0;
  }

  auto state = std::make_shared<FdState>();
  state->ino = ino;
  state->flags = flags;
  state->offset = (flags & kAppend) != 0 ? attr.size : 0;

  const int fd = next_fd_.fetch_add(1, std::memory_order_relaxed);
  FdInsert(fd, std::move(state));
  return fd;
}

Status Vfs::Close(int fd) {
  return FdErase(fd) ? OkStatus() : Status(ErrorCode::kBadFd);
}

Result<size_t> Vfs::Read(int fd, void* dst, size_t len) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  // pos_mu is held across the FS call: concurrent reads on one fd each
  // consume a distinct range (POSIX read atomicity), instead of the old
  // read-offset/copy/advance dance whose two critical sections let them
  // observe the same offset.
  std::lock_guard<std::mutex> pos_lock(e->pos_mu);
  HINFS_ASSIGN_OR_RETURN(size_t n, fs_->Read(e->ino, e->offset, dst, len));
  e->offset += n;
  return n;
}

Result<size_t> Vfs::Pread(int fd, void* dst, size_t len, uint64_t offset) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->Read(e->ino, offset, dst, len);
}

Result<size_t> Vfs::WriteInternal(uint64_t ino, uint32_t flags, const void* src, size_t len,
                                  uint64_t offset) {
  const WriteOptions options = sync_mount_ || (flags & kSync) != 0
                                   ? WriteOptions::EagerPersistent()
                                   : WriteOptions::Buffered();
  return fs_->Write(ino, offset, src, len, options);
}

Result<size_t> Vfs::Write(int fd, const void* src, size_t len) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  std::lock_guard<std::mutex> pos_lock(e->pos_mu);
  uint64_t offset = e->offset;
  if ((e->flags & kAppend) != 0) {
    // O_APPEND: the write lands at EOF. The size lookup happens under pos_mu,
    // so appends on this fd are ordered with its other offset-dependent ops;
    // there is no table relookup afterwards because `e` stays valid even if
    // the fd is concurrently closed.
    HINFS_ASSIGN_OR_RETURN(InodeAttr attr, fs_->GetAttr(e->ino));
    offset = attr.size;
  }
  HINFS_ASSIGN_OR_RETURN(size_t n, WriteInternal(e->ino, e->flags, src, len, offset));
  e->offset = offset + n;
  return n;
}

Result<size_t> Vfs::Pwrite(int fd, const void* src, size_t len, uint64_t offset) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return WriteInternal(e->ino, e->flags, src, len, offset);
}

Result<uint64_t> Vfs::Seek(int fd, uint64_t offset) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  std::lock_guard<std::mutex> pos_lock(e->pos_mu);
  e->offset = offset;
  return offset;
}

Status Vfs::Fsync(int fd) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->Fsync(e->ino);
}

Status Vfs::Ftruncate(int fd, uint64_t size) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->Truncate(e->ino, size);
}

Result<InodeAttr> Vfs::Fstat(int fd) {
  std::shared_ptr<FdState> e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->GetAttr(e->ino);
}

// --- path-based syscalls --------------------------------------------------------

Status Vfs::Mkdir(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  Result<uint64_t> created = fs_->Create(dir_ino, leaf, FileType::kDirectory);
  return created.ok() ? OkStatus() : created.status();
}

Status Vfs::Rmdir(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  InvalidateDentry(dir_ino, leaf);
  HINFS_RETURN_IF_ERROR(fs_->Unlink(dir_ino, leaf));
  InvalidateDentry(dir_ino, leaf);
  return OkStatus();
}

Status Vfs::Unlink(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  // Invalidate on both sides of the FS call: before, so concurrent lookups
  // re-resolve; after, so a lookup that raced the unlink does not leave a
  // stale entry behind.
  InvalidateDentry(dir_ino, leaf);
  HINFS_RETURN_IF_ERROR(fs_->Unlink(dir_ino, leaf));
  InvalidateDentry(dir_ino, leaf);
  return OkStatus();
}

Status Vfs::Rename(std::string_view from, std::string_view to) {
  std::string from_leaf;
  std::string to_leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t from_dir, ResolveParent(from, &from_leaf));
  HINFS_ASSIGN_OR_RETURN(uint64_t to_dir, ResolveParent(to, &to_leaf));
  InvalidateDentry(from_dir, from_leaf);
  InvalidateDentry(to_dir, to_leaf);
  HINFS_RETURN_IF_ERROR(fs_->Rename(from_dir, from_leaf, to_dir, to_leaf));
  InvalidateDentry(from_dir, from_leaf);
  InvalidateDentry(to_dir, to_leaf);
  return OkStatus();
}

Result<InodeAttr> Vfs::Stat(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, Resolve(path));
  return fs_->GetAttr(ino);
}

Result<std::vector<DirEntry>> Vfs::ReadDir(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, Resolve(path));
  return fs_->ReadDir(ino);
}

bool Vfs::Exists(std::string_view path) { return Resolve(path).ok(); }

Status Vfs::SyncFs() { return fs_->SyncFs(); }

Status Vfs::Unmount() {
  for (FdShard& s : fd_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (FdShard::Slot& slot : s.slots) {
      slot.fd = FdShard::kEmpty;
      slot.state.reset();
    }
    s.used = 0;
    s.occupied = 0;
  }
  for (DcacheShard& s : dcache_shards_) {
    std::unique_lock lock(s.mu);
    s.map.clear();
  }
  return fs_->Unmount();
}

Status Vfs::WriteFile(std::string_view path, std::string_view contents) {
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kCreate | kWrOnly | kTrunc));
  Result<size_t> n = Write(fd, contents.data(), contents.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  if (*n != contents.size()) {
    return Status(ErrorCode::kIoError, "short write");
  }
  return close_st;
}

Result<std::string> Vfs::ReadFileToString(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(InodeAttr attr, Stat(path));
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kRdOnly));
  std::string out(attr.size, '\0');
  Result<size_t> n = Read(fd, out.data(), out.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  out.resize(*n);
  if (!close_st.ok()) {
    return close_st;
  }
  return out;
}

}  // namespace hinfs
