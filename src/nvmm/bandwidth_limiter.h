// BandwidthLimiter: models NVMM's limited write bandwidth (paper default 1 GB/s,
// ~1/8 of DRAM bandwidth).
//
// The paper caps the number of concurrently-writing threads; we model the same
// effect as a shared bandwidth pipe that writer threads serialize through:
//   kSpin mode    - a wall-clock token bucket; writers spin until their bytes fit.
//   kVirtual mode - a deterministic single-server queue in simulated time:
//                   start = max(thread_now, server_free); server_free = start + bytes/BW.
// Both make background writeback traffic compete with foreground eager-persistent
// writes, the effect Figs. 7-9 of the paper depend on (see DESIGN.md §1).
//
// Both modes are lock-free: the pipe state is one atomic nanosecond counter
// (the time the pipe next becomes free) advanced by CAS. A caller whose bytes
// fit in the burst allowance returns without waiting (the fast path); only a
// dry bucket spins (spin mode) or advances the caller's SimClock past the
// queue (virtual mode). fast/slow acquisition counters expose how often the
// limiter actually throttles (reported by bench/micro_primitives).

#ifndef SRC_NVMM_BANDWIDTH_LIMITER_H_
#define SRC_NVMM_BANDWIDTH_LIMITER_H_

#include <atomic>
#include <cstdint>

#include "src/nvmm/latency_model.h"

namespace hinfs {

class BandwidthLimiter {
 public:
  // bytes_per_sec == 0 disables limiting entirely.
  BandwidthLimiter(LatencyMode mode, uint64_t bytes_per_sec);

  // Blocks (spin mode) or advances the caller's SimClock (virtual mode) until
  // `bytes` of NVMM write bandwidth have been consumed.
  void Acquire(uint64_t bytes);

  uint64_t bytes_per_sec() const { return bytes_per_sec_.load(std::memory_order_relaxed); }
  void set_bytes_per_sec(uint64_t bps);

  // Acquisitions that fit the burst allowance (no wait) vs. those that found
  // the bucket dry (spin mode) or the server busy (virtual mode).
  uint64_t fast_acquires() const { return fast_acquires_.load(std::memory_order_relaxed); }
  uint64_t slow_acquires() const { return slow_acquires_.load(std::memory_order_relaxed); }

 private:
  LatencyMode mode_;
  std::atomic<uint64_t> bytes_per_sec_;

  // The shared pipe state: the instant (wall ns in spin mode, simulated ns in
  // virtual mode) at which all admitted traffic has drained. Advanced by CAS;
  // equivalent to the classic token bucket via the GCRA formulation — a
  // request conforms when now >= pipe_free - burst_window.
  std::atomic<uint64_t> pipe_free_ns_{0};

  std::atomic<uint64_t> fast_acquires_{0};
  std::atomic<uint64_t> slow_acquires_{0};
};

}  // namespace hinfs

#endif  // SRC_NVMM_BANDWIDTH_LIMITER_H_
