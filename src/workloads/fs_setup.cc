#include "src/workloads/fs_setup.h"

#include "src/fs/blockfs/block_fs.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/wal/wal_fs.h"

namespace hinfs {

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kPmfs:
      return "PMFS";
    case FsKind::kExt4Dax:
      return "EXT4-DAX";
    case FsKind::kExt2Nvmmbd:
      return "EXT2+NVMMBD";
    case FsKind::kExt4Nvmmbd:
      return "EXT4+NVMMBD";
    case FsKind::kHinfs:
      return "HiNFS";
    case FsKind::kHinfsNclfw:
      return "HiNFS-NCLFW";
    case FsKind::kHinfsWb:
      return "HiNFS-WB";
    case FsKind::kHinfsFifo:
      return "HiNFS-FIFO";
  }
  return "?";
}

TestBed::~TestBed() {
  // File system first (flushes into devices), then devices.
  vfs.reset();
  fs.reset();
  blockdev.reset();
  nvmm.reset();
}

Result<std::unique_ptr<TestBed>> MakeTestBed(FsKind kind, const TestBedConfig& config) {
  auto bed = std::make_unique<TestBed>();
  bed->kind = kind;
  bed->nvmm = std::make_unique<NvmmDevice>(config.nvmm);

  HinfsOptions hopts = config.hinfs;
  PmfsOptions popts = config.pmfs;
  uint64_t fs_bytes = config.nvmm.size_bytes;
  if (config.wal) {
    const uint64_t wal_bytes = hopts.wal.total_bytes;
    if (wal_bytes + kBlockSize > fs_bytes) {
      return Status(ErrorCode::kInvalidArgument, "wal carve larger than device");
    }
    fs_bytes -= wal_bytes;
    popts.device_bytes = fs_bytes;
  }
  switch (kind) {
    case FsKind::kPmfs: {
      HINFS_ASSIGN_OR_RETURN(auto fs, PmfsFs::Format(bed->nvmm.get(), popts));
      bed->fs = std::move(fs);
      break;
    }
    case FsKind::kHinfsNclfw:
      hopts.clfw = false;
      [[fallthrough]];
    case FsKind::kHinfs: {
      HINFS_ASSIGN_OR_RETURN(auto fs, HinfsFs::Format(bed->nvmm.get(), hopts, popts));
      bed->fs = std::move(fs);
      break;
    }
    case FsKind::kHinfsWb: {
      hopts.eager_checker = false;
      HINFS_ASSIGN_OR_RETURN(auto fs, HinfsFs::Format(bed->nvmm.get(), hopts, popts));
      bed->fs = std::move(fs);
      break;
    }
    case FsKind::kHinfsFifo: {
      hopts.replacement = HinfsOptions::Replacement::kFifo;
      HINFS_ASSIGN_OR_RETURN(auto fs, HinfsFs::Format(bed->nvmm.get(), hopts, popts));
      bed->fs = std::move(fs);
      break;
    }
    case FsKind::kExt4Dax:
    case FsKind::kExt2Nvmmbd:
    case FsKind::kExt4Nvmmbd: {
      const uint64_t blocks = fs_bytes / kBlockSize;
      bed->blockdev = std::make_unique<NvmmBlockDevice>(bed->nvmm.get(), /*first_byte=*/0, blocks);
      BlockFsOptions opts;
      opts.journal = kind != FsKind::kExt2Nvmmbd;
      opts.dax = kind == FsKind::kExt4Dax;
      opts.max_inodes = popts.max_inodes;
      opts.page_cache_pages = config.page_cache_pages;
      if (opts.dax) {
        opts.dax_nvmm = bed->nvmm.get();
        opts.dax_nvmm_base = 0;
      }
      HINFS_ASSIGN_OR_RETURN(auto fs, BlockFs::Format(bed->blockdev.get(), opts));
      bed->fs = std::move(fs);
      break;
    }
  }
  if (config.wal) {
    HINFS_ASSIGN_OR_RETURN(auto fs, WalFs::Format(std::move(bed->fs), bed->nvmm.get(),
                                                  /*wal_base=*/fs_bytes, hopts.wal.total_bytes,
                                                  hopts.wal));
    bed->fs = std::move(fs);
  }
  bed->vfs = std::make_unique<Vfs>(bed->fs.get(), config.sync_mount);
  return bed;
}

}  // namespace hinfs
