// Quickstart: format HiNFS on an emulated NVMM device, do file I/O through
// the Vfs, and inspect what the NVMM-aware write buffer did.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"

using namespace hinfs;

int main() {
  // 1. An emulated NVMM device: 256 MB, 200 ns extra write latency per
  //    flushed cacheline, 1 GB/s write bandwidth (the paper's defaults).
  NvmmConfig nvmm_cfg;
  nvmm_cfg.size_bytes = 256ull << 20;
  nvmm_cfg.latency_mode = LatencyMode::kSpin;
  nvmm_cfg.write_latency_ns = 200;
  NvmmDevice nvmm(nvmm_cfg);

  // 2. Format HiNFS with a 32 MB DRAM write buffer.
  HinfsOptions hopts;
  hopts.buffer_bytes = 32ull << 20;
  auto fs = HinfsFs::Format(&nvmm, hopts);
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed: %s\n", fs.status().ToString().c_str());
    return 1;
  }

  // 3. POSIX-like I/O through the Vfs. (Counters reset so they show the I/O
  //    below, not the formatting traffic.)
  nvmm.ResetCounters();
  Vfs vfs(fs->get());
  if (Status st = vfs.Mkdir("/docs"); !st.ok()) {
    std::fprintf(stderr, "mkdir: %s\n", st.ToString().c_str());
    return 1;
  }

  // A lazy-persistent write: lands in the DRAM buffer, hiding NVMM latency.
  std::string draft(64 * 1024, 'd');
  if (Status st = vfs.WriteFile("/docs/draft.txt", draft); !st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote 64 KB lazily; NVMM bytes flushed so far: %llu (metadata only)\n",
              static_cast<unsigned long long>(nvmm.flushed_bytes()));

  // fsync makes it durable: the buffer drains to NVMM.
  auto fd = vfs.Open("/docs/draft.txt", kRdWr);
  if (!fd.ok() || !vfs.Fsync(*fd).ok()) {
    std::fprintf(stderr, "fsync failed\n");
    return 1;
  }
  std::printf("after fsync: NVMM bytes flushed: %llu\n",
              static_cast<unsigned long long>(nvmm.flushed_bytes()));
  (void)vfs.Close(*fd);

  // Reads are direct (single copy), merged from DRAM and NVMM.
  auto content = vfs.ReadFileToString("/docs/draft.txt");
  if (!content.ok() || content->size() != draft.size()) {
    std::fprintf(stderr, "read back failed\n");
    return 1;
  }
  std::printf("read back %zu bytes OK\n", content->size());

  // Buffer statistics.
  auto& buf = (*fs)->buffer();
  std::printf("buffer: capacity=%zu blocks, hits=%llu, misses=%llu, writebacks=%llu blocks\n",
              buf.capacity_blocks(), static_cast<unsigned long long>(buf.buffer_hits()),
              static_cast<unsigned long long>(buf.buffer_misses()),
              static_cast<unsigned long long>(buf.writeback_blocks()));

  if (Status st = vfs.Unmount(); !st.ok()) {
    std::fprintf(stderr, "unmount: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("unmounted cleanly\n");
  return 0;
}
