#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

class PmfsTest : public ::testing::Test {
 protected:
  PmfsTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 64 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions opts;
    opts.max_inodes = 4096;
    opts.journal_bytes = 1 << 20;
    auto fs = PmfsFs::Format(nvmm_.get(), opts);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(PmfsTest, WriteReadSmallFile) {
  ASSERT_TRUE(vfs_->WriteFile("/a", "hello world").ok());
  auto content = vfs_->ReadFileToString("/a");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello world");
}

TEST_F(PmfsTest, MissingFileNotFound) {
  EXPECT_EQ(vfs_->Stat("/missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(vfs_->Open("/missing", kRdOnly).status().code(), ErrorCode::kNotFound);
}

TEST_F(PmfsTest, CreateRequiresFlag) {
  EXPECT_FALSE(vfs_->Open("/new", kWrOnly).ok());
  EXPECT_TRUE(vfs_->Open("/new", kWrOnly | kCreate).ok());
}

TEST_F(PmfsTest, MkdirAndNestedFiles) {
  ASSERT_TRUE(vfs_->Mkdir("/dir").ok());
  ASSERT_TRUE(vfs_->Mkdir("/dir/sub").ok());
  ASSERT_TRUE(vfs_->WriteFile("/dir/sub/f", "data").ok());
  auto attr = vfs_->Stat("/dir/sub/f");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 4u);
  EXPECT_EQ(attr->type, FileType::kRegular);
  auto dattr = vfs_->Stat("/dir/sub");
  ASSERT_TRUE(dattr.ok());
  EXPECT_EQ(dattr->type, FileType::kDirectory);
}

TEST_F(PmfsTest, ReadDirListsEntries) {
  ASSERT_TRUE(vfs_->Mkdir("/d").ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(vfs_->WriteFile("/d/f" + std::to_string(i), "x").ok());
  }
  auto entries = vfs_->ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 10u);
}

TEST_F(PmfsTest, UnlinkRemoves) {
  ASSERT_TRUE(vfs_->WriteFile("/gone", "bye").ok());
  const uint64_t free_before = fs_->free_data_blocks();
  ASSERT_TRUE(vfs_->Unlink("/gone").ok());
  EXPECT_FALSE(vfs_->Exists("/gone").value_or(true));
  EXPECT_GT(fs_->free_data_blocks(), free_before);  // blocks reclaimed
}

TEST_F(PmfsTest, UnlinkNonEmptyDirRejected) {
  ASSERT_TRUE(vfs_->Mkdir("/d").ok());
  ASSERT_TRUE(vfs_->WriteFile("/d/f", "x").ok());
  EXPECT_EQ(vfs_->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(vfs_->Unlink("/d/f").ok());
  EXPECT_TRUE(vfs_->Rmdir("/d").ok());
}

TEST_F(PmfsTest, DuplicateCreateRejected) {
  ASSERT_TRUE(vfs_->Mkdir("/d").ok());
  EXPECT_EQ(vfs_->Mkdir("/d").code(), ErrorCode::kExists);
}

TEST_F(PmfsTest, AppendGrowsFile) {
  ASSERT_TRUE(vfs_->WriteFile("/log", "aaaa").ok());
  auto fd = vfs_->Open("/log", kWrOnly | kAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, "bbbb", 4).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  auto content = vfs_->ReadFileToString("/log");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "aaaabbbb");
}

TEST_F(PmfsTest, PwritePreadAtOffsets) {
  auto fd = vfs_->Open("/f", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Pwrite(*fd, "XYZ", 3, 100).ok());
  char out[3];
  auto n = vfs_->Pread(*fd, out, 3, 100);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(std::memcmp(out, "XYZ", 3), 0);
}

TEST_F(PmfsTest, HolesReadAsZeros) {
  auto fd = vfs_->Open("/sparse", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  // Write far beyond the start: blocks 0..N stay holes.
  ASSERT_TRUE(vfs_->Pwrite(*fd, "end", 3, 10 * kBlockSize).ok());
  char out[16] = {1, 1, 1};
  auto n = vfs_->Pread(*fd, out, 16, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 16u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(out[i], 0) << i;
  }
}

TEST_F(PmfsTest, LargeFileCrossesRadixLevels) {
  // > 2 MB forces radix height 2 (512 blocks per level-1 node).
  const size_t total = 5 << 20;
  std::vector<uint8_t> payload(1 << 16);
  Rng rng(9);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto fd = vfs_->Open("/big", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  size_t written = 0;
  while (written < total) {
    auto n = vfs_->Write(*fd, payload.data(), payload.size());
    ASSERT_TRUE(n.ok());
    written += *n;
  }
  ASSERT_TRUE(vfs_->Close(*fd).ok());

  auto attr = vfs_->Stat("/big");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, total);

  // Spot-check content at several offsets.
  fd = vfs_->Open("/big", kRdOnly);
  ASSERT_TRUE(fd.ok());
  for (uint64_t off : {uint64_t{0}, uint64_t{1 << 20}, uint64_t{(3 << 20) + 12345}}) {
    uint8_t out[64];
    auto n = vfs_->Pread(*fd, out, 64, off);
    ASSERT_TRUE(n.ok());
    for (int i = 0; i < 64; i++) {
      EXPECT_EQ(out[i], payload[(off + i) % payload.size()]) << off << "+" << i;
    }
  }
}

TEST_F(PmfsTest, TruncateShrinksAndFrees) {
  std::vector<uint8_t> payload(256 * 1024, 0x7e);
  auto fd = vfs_->Open("/t", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, payload.data(), payload.size()).ok());
  const uint64_t free_full = fs_->free_data_blocks();
  ASSERT_TRUE(vfs_->Ftruncate(*fd, 1000).ok());
  EXPECT_GT(fs_->free_data_blocks(), free_full);
  auto attr = vfs_->Fstat(*fd);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 1000u);
  // Data below the cut survives.
  uint8_t out[8];
  auto n = vfs_->Pread(*fd, out, 8, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out[0], 0x7e);
}

TEST_F(PmfsTest, OpenTruncClearsContent) {
  ASSERT_TRUE(vfs_->WriteFile("/t", "old content").ok());
  auto fd = vfs_->Open("/t", kWrOnly | kTrunc);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  auto attr = vfs_->Stat("/t");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 0u);
}

TEST_F(PmfsTest, RenameMovesFile) {
  ASSERT_TRUE(vfs_->Mkdir("/a").ok());
  ASSERT_TRUE(vfs_->Mkdir("/b").ok());
  ASSERT_TRUE(vfs_->WriteFile("/a/f", "payload").ok());
  ASSERT_TRUE(vfs_->Rename("/a/f", "/b/g").ok());
  EXPECT_FALSE(vfs_->Exists("/a/f").value_or(true));
  auto content = vfs_->ReadFileToString("/b/g");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "payload");
}

TEST_F(PmfsTest, RenameReplacesTarget) {
  ASSERT_TRUE(vfs_->WriteFile("/x", "new").ok());
  ASSERT_TRUE(vfs_->WriteFile("/y", "old-target").ok());
  ASSERT_TRUE(vfs_->Rename("/x", "/y").ok());
  EXPECT_FALSE(vfs_->Exists("/x").value_or(true));
  auto content = vfs_->ReadFileToString("/y");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "new");
}

TEST_F(PmfsTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(vfs_->Mkdir("/many").ok());
  // Enough dirents to extend the directory past one block (64 per block).
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(vfs_->WriteFile("/many/f" + std::to_string(i), "x").ok());
  }
  auto entries = vfs_->ReadDir("/many");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 200u);
  // Delete them all; slots are reused by new names.
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(vfs_->Unlink("/many/f" + std::to_string(i)).ok());
  }
  entries = vfs_->ReadDir("/many");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST_F(PmfsTest, InodeReuseAfterUnlink) {
  for (int round = 0; round < 50; round++) {
    ASSERT_TRUE(vfs_->WriteFile("/churn", "round" + std::to_string(round)).ok());
    ASSERT_TRUE(vfs_->Unlink("/churn").ok());
  }
  ASSERT_TRUE(vfs_->WriteFile("/churn", "final").ok());
  auto content = vfs_->ReadFileToString("/churn");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "final");
}

TEST_F(PmfsTest, NameTooLongRejected) {
  const std::string long_name(100, 'x');
  EXPECT_EQ(vfs_->WriteFile("/" + long_name, "v").code(), ErrorCode::kNameTooLong);
}

TEST_F(PmfsTest, ReadPastEofShort) {
  ASSERT_TRUE(vfs_->WriteFile("/short", "12345").ok());
  auto fd = vfs_->Open("/short", kRdOnly);
  ASSERT_TRUE(fd.ok());
  char buf[100];
  auto n = vfs_->Pread(*fd, buf, 100, 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  n = vfs_->Pread(*fd, buf, 100, 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(PmfsTest, FsyncSucceeds) {
  auto fd = vfs_->Open("/f", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, "data", 4).ok());
  EXPECT_TRUE(vfs_->Fsync(*fd).ok());
}

TEST_F(PmfsTest, RemountPreservesEverything) {
  ASSERT_TRUE(vfs_->Mkdir("/keep").ok());
  ASSERT_TRUE(vfs_->WriteFile("/keep/a", "alpha").ok());
  ASSERT_TRUE(vfs_->WriteFile("/keep/b", std::string(10000, 'q')).ok());
  ASSERT_TRUE(vfs_->Unmount().ok());
  fs_.reset();

  auto fs = PmfsFs::Mount(nvmm_.get());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(*fs);
  vfs_ = std::make_unique<Vfs>(fs_.get());

  auto a = vfs_->ReadFileToString("/keep/a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "alpha");
  auto b = vfs_->ReadFileToString("/keep/b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 10000u);
  EXPECT_EQ((*b)[9999], 'q');
}

TEST_F(PmfsTest, MountRejectsUnformattedDevice) {
  NvmmConfig cfg;
  cfg.size_bytes = 1 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice blank(cfg);
  EXPECT_EQ(PmfsFs::Mount(&blank).status().code(), ErrorCode::kCorrupt);
}

TEST_F(PmfsTest, MmapReadsAndWrites) {
  ASSERT_TRUE(vfs_->WriteFile("/m", std::string(kBlockSize, 'm')).ok());
  auto attr = vfs_->Stat("/m");
  ASSERT_TRUE(attr.ok());
  auto ptr = fs_->Mmap(attr->ino, 0, kBlockSize);
  ASSERT_TRUE(ptr.ok()) << ptr.status().ToString();
  EXPECT_EQ((*ptr)[0], 'm');
  (*ptr)[0] = 'M';
  ASSERT_TRUE(fs_->Msync(attr->ino, 0, kBlockSize).ok());
  ASSERT_TRUE(fs_->Munmap(attr->ino).ok());
  auto content = vfs_->ReadFileToString("/m");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)[0], 'M');
}

TEST_F(PmfsTest, StatsTrackAccessTimes) {
  ASSERT_TRUE(vfs_->WriteFile("/s", std::string(8192, 's')).ok());
  auto content = vfs_->ReadFileToString("/s");
  ASSERT_TRUE(content.ok());
  EXPECT_GT(fs_->stats().Get(kStatWriteAccessNs), 0u);
  EXPECT_GT(fs_->stats().Get(kStatReadAccessNs), 0u);
  EXPECT_EQ(fs_->stats().Get(kStatWrittenBytes), 8192u);
}

}  // namespace
}  // namespace hinfs
