// Fig. 2: percentage of fsync bytes across workloads — how much of the write
// volume an NVMM file system is forced to persist eagerly.

#include <atomic>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/workloads/trace.h"
#include "src/workloads/workload.h"

using namespace hinfs;

namespace {

// The workload behind the figure's >90%-fsync-bytes traces: TPC-C-style
// redo-log appends. Each thread appends small O_SYNC records to its own log
// file and rotates (truncate-to-zero) every 1 MB, like a checkpointing
// database. On eager-persist PMFS every append is a full journaled write
// (~15 persist points); behind the WAL it is one log append + one group
// commit, and rotation discards the dead log bytes before they are ever
// checkpointed into the final layout.
Result<double> RunSyncAppend(bool wal, int threads) {
  constexpr size_t kRecordBytes = 512;
  constexpr uint64_t kRotateBytes = 1ull << 20;
  TestBedConfig bed_cfg = PaperBedConfig();
  bed_cfg.wal = wal;
  HINFS_ASSIGN_OR_RETURN(std::unique_ptr<TestBed> bed, MakeTestBed(FsKind::kPmfs, bed_cfg));
  Vfs* vfs = bed->vfs.get();

  std::atomic<uint64_t> total_appends{0};
  const uint64_t start = MonotonicNowNs();
  const uint64_t deadline = start + BenchDurationMs() * 1'000'000ull;
  HINFS_RETURN_IF_ERROR(RunThreads(threads, [&](int thread) -> Status {
    const std::string path = "/synclog" + std::to_string(thread);
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(path, kRdWr | kCreate | kSync));
    std::vector<char> record(kRecordBytes, static_cast<char>('a' + thread));
    uint64_t offset = 0;
    uint64_t appends = 0;
    while (MonotonicNowNs() < deadline) {
      HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Pwrite(fd, record.data(), record.size(), offset));
      offset += n;
      appends++;
      if (offset >= kRotateBytes) {
        HINFS_RETURN_IF_ERROR(vfs->Ftruncate(fd, 0));
        offset = 0;
      }
    }
    total_appends.fetch_add(appends);
    return vfs->Close(fd);
  }));
  const double seconds = static_cast<double>(MonotonicNowNs() - start) / 1e9;
  if (std::getenv("HINFS_BENCH_PERSIST_DEBUG") != nullptr && total_appends.load() > 0) {
    std::fprintf(stderr, "  [%s t=%d] lines/append=%.1f fences/append=%.2f\n",
                 wal ? "wal" : "eager", threads,
                 static_cast<double>(bed->nvmm->flushed_lines()) / total_appends.load(),
                 static_cast<double>(bed->nvmm->fence_count()) / total_appends.load());
  }
  HINFS_RETURN_IF_ERROR(vfs->Unmount());
  return seconds > 0 ? static_cast<double>(total_appends.load()) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 2", "percentage of fsync bytes per workload");

  std::vector<BenchJsonRow> rows;
  std::printf("%-10s %14s %14s %9s\n", "workload", "written(B)", "fsync(B)", "fsync%");
  for (const TraceProfile& profile :
       {TpccTraceProfile(), FacebookProfile(), Usr0Profile(), Usr1Profile(), LasrProfile()}) {
    TraceProfile p = profile;
    p.num_ops = 60000;
    const auto stats = ComputeFsyncBytes(SynthesizeTrace(p));
    std::printf("%-10s %14llu %14llu %8.1f%%\n", p.name.c_str(),
                static_cast<unsigned long long>(stats.total_written),
                static_cast<unsigned long long>(stats.fsync_bytes), stats.Percent());
    rows.push_back({"trace", p.name, "num_ops", static_cast<double>(p.num_ops),
                    stats.Percent(), "fsync_pct"});
  }

  // Filebench-derived points: varmail fsyncs everything it appends; fileserver
  // and webserver never fsync.
  {
    auto bed = MakeTestBed(FsKind::kPmfs, PaperBedConfig());
    if (!bed.ok()) {
      return 1;
    }
    FilebenchConfig cfg = PaperFilebenchConfig();
    cfg.io_size = 16 * 1024;
    if (!PrepareFileset((*bed)->vfs.get(), cfg).ok()) {
      return 1;
    }
    auto varmail = RunFilebench((*bed)->vfs.get(), Personality::kVarmail, cfg);
    if (varmail.ok()) {
      // Every varmail append is followed by fsync before further writes.
      std::printf("%-10s %14llu %14llu %8.1f%%\n", "Varmail",
                  static_cast<unsigned long long>(varmail->bytes_written),
                  static_cast<unsigned long long>(varmail->bytes_written), 100.0);
      rows.push_back({"filebench", "Varmail", "num_ops", 0, 100.0, "fsync_pct"});
    }
    std::printf("%-10s %14s %14s %8.1f%%\n", "Fileserver", "-", "-", 0.0);
    std::printf("%-10s %14s %14s %8.1f%%\n", "Webserver", "-", "-", 0.0);
    rows.push_back({"filebench", "Fileserver", "num_ops", 0, 0.0, "fsync_pct"});
    rows.push_back({"filebench", "Webserver", "num_ops", 0, 0.0, "fsync_pct"});
    (void)(*bed)->vfs->Unmount();
  }
  // The cost of those fsync bytes, and what the WAL buys back: varmail's
  // per-append sync on eager-persist PMFS vs the same FS behind the NVMM
  // write-ahead log (logged durability: one group-commit flush epoch per sync
  // instead of the ~13 separate persist points of a journaled eager write).
  // Both columns run on the identical clwb-class device (ordering stalls are
  // per flush epoch, the regime the WAL's batched commit is built for; under
  // line-serial clflush the payload lines dominate both paths and the WAL
  // only saves the journal-overhead lines) with mail-sized 2 KB appends.
  // The acceptance bar is >= 1.5x at 4 threads.
  std::printf("\nvarmail sync-write throughput: eager persist vs logged (+wal)\n");
  std::printf("%-10s %8s %14s\n", "fs", "threads", "ops/s");
  for (const int threads : {1, 4}) {
    double eager_ops = 0;
    for (const bool wal : {false, true}) {
      TestBedConfig bed_cfg = PaperBedConfig();
      bed_cfg.nvmm.flush_instruction = FlushInstruction::kClflushopt;
      bed_cfg.wal = wal;
      FilebenchConfig cfg = PaperFilebenchConfig();
      cfg.io_size = 2048;
      cfg.threads = threads;
      auto r = RunPersonalityOn(FsKind::kPmfs, Personality::kVarmail, bed_cfg, cfg);
      if (!r.ok()) {
        std::fprintf(stderr, "varmail %s: %s\n", wal ? "pmfs+wal" : "pmfs",
                     r.status().ToString().c_str());
        return 1;
      }
      const double ops_per_sec = r->OpsPerSec();
      if (!wal) {
        eager_ops = ops_per_sec;
      }
      char speedup[32] = "";
      if (wal && eager_ops > 0) {
        std::snprintf(speedup, sizeof(speedup), " (%.2fx)", ops_per_sec / eager_ops);
      }
      std::printf("%-10s %8d %14.0f%s\n", wal ? "PMFS+wal" : "PMFS", threads,
                  ops_per_sec, speedup);
      rows.push_back({wal ? "PMFS+wal" : "PMFS", "Varmail", "threads",
                      static_cast<double>(threads), ops_per_sec, "ops_per_sec"});
    }
  }

  // The headline number: 512 B O_SYNC redo-log appends with 1 MB rotation,
  // eager vs logged, on the default (Table 2, clflush) device.
  std::printf("\nsync-append (512 B O_SYNC records) throughput: eager vs logged\n");
  std::printf("%-10s %8s %14s\n", "fs", "threads", "appends/s");
  for (const int threads : {1, 4}) {
    double eager_ops = 0;
    for (const bool wal : {false, true}) {
      auto r = RunSyncAppend(wal, threads);
      if (!r.ok()) {
        std::fprintf(stderr, "sync-append %s: %s\n", wal ? "pmfs+wal" : "pmfs",
                     r.status().ToString().c_str());
        return 1;
      }
      if (!wal) {
        eager_ops = *r;
      }
      char speedup[32] = "";
      if (wal && eager_ops > 0) {
        std::snprintf(speedup, sizeof(speedup), " (%.2fx)", *r / eager_ops);
      }
      std::printf("%-10s %8d %14.0f%s\n", wal ? "PMFS+wal" : "PMFS", threads, *r, speedup);
      rows.push_back({wal ? "PMFS+wal" : "PMFS", "SyncAppend", "threads",
                      static_cast<double>(threads), *r, "ops_per_sec"});
    }
  }

  std::printf("\npaper shape: TPC-C > 90%%, LASR = 0%%, desktop traces in between\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
