// Micro-benchmarks (google-benchmark) of the primitives the figure benches
// compose: persistent vs volatile NVMM stores, DRAM Block Index operations,
// Cacheline Bitmap math, journal transactions, buffered vs direct block writes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fs/pmfs/journal.h"
#include "src/hinfs/btree.h"
#include "src/hinfs/cacheline_bitmap.h"
#include "src/hinfs/dram_buffer.h"
#include "src/nvmm/nvmm_device.h"
#include "src/qos/qos_scheduler.h"

namespace hinfs {
namespace {

NvmmConfig SpinConfig(size_t bytes = 64 << 20) {
  NvmmConfig cfg;
  cfg.size_bytes = bytes;
  cfg.latency_mode = LatencyMode::kSpin;
  cfg.write_latency_ns = 200;
  return cfg;
}

void BM_NvmmVolatileStore(benchmark::State& state) {
  NvmmDevice dev(SpinConfig());
  std::vector<uint8_t> buf(state.range(0), 0x5a);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.Store(off, buf.data(), buf.size()));
    off = (off + 4096) % (32 << 20);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_NvmmVolatileStore)->Arg(64)->Arg(4096)->Arg(65536);

void BM_NvmmPersistentStore(benchmark::State& state) {
  NvmmDevice dev(SpinConfig());
  std::vector<uint8_t> buf(state.range(0), 0x5a);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.StorePersistent(off, buf.data(), buf.size()));
    off = (off + 4096) % (32 << 20);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_NvmmPersistentStore)->Arg(64)->Arg(4096)->Arg(65536);

void BM_BTreeInsert(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    BTreeMap<uint64_t> tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); i++) {
      tree.Insert(rng.Next() % 100000, i);
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeFind(benchmark::State& state) {
  BTreeMap<uint64_t> tree;
  Rng rng(2);
  for (int i = 0; i < 10000; i++) {
    tree.Insert(rng.Next() % 100000, i);
  }
  Rng probe(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(probe.Next() % 100000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeFind);

void BM_LineMask(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    const size_t off = rng.Below(4000);
    benchmark::DoNotOptimize(LineMaskFor(off, 4096 - off));
    benchmark::DoNotOptimize(FullLineMaskFor(off, 4096 - off));
  }
}
BENCHMARK(BM_LineMask);

// Every NvmmDevice::Flush trips the bandwidth arbiter, so it is the single
// structure every writeback worker and eager-persistent writer shares. This
// bench hammers QosScheduler::Acquire from concurrent threads — even threads
// charge as foreground tenants (alternating tenant 0/1), odd threads as
// background writeback traffic — and reports fast (request fits the burst
// window, no wait) vs slow (bucket dry: the caller spins) acquisitions per
// traffic class, so the foreground-reserve split is visible in bench-smoke
// JSON. range(0) is the modeled bandwidth in GB/s: 64 GB/s never runs dry
// (pure contention measurement), 1 GB/s (the paper default) saturates and
// exercises the spin + work-conserving-borrow paths.
void BM_BandwidthAcquire(benchmark::State& state) {
  static std::unique_ptr<qos::QosScheduler> sched;
  static uint64_t bps = 0;
  static uint64_t fg_fast_base = 0, fg_slow_base = 0;
  static uint64_t bg_fast_base = 0, bg_slow_base = 0;
  if (state.thread_index() == 0) {
    bps = static_cast<uint64_t>(state.range(0)) << 30;
    if (sched == nullptr) {
      qos::QosConfig cfg;
      cfg.tenants = 2;
      cfg.fg_reserve = 0.5;
      sched = std::make_unique<qos::QosScheduler>(LatencyMode::kSpin, cfg);
    }
    fg_fast_base = sched->fg_fast_acquires();
    fg_slow_base = sched->fg_slow_acquires();
    bg_fast_base = sched->bg_fast_acquires();
    bg_slow_base = sched->bg_slow_acquires();
  }
  const qos::QosContext ctx{
      static_cast<qos::TenantId>((state.thread_index() / 2) % 2),
      state.thread_index() % 2 == 1 ? qos::TrafficClass::kBackground
                                    : qos::TrafficClass::kForeground};
  for (auto _ : state) {
    sched->Acquire(ctx, kCachelineSize, bps);
  }
  if (state.thread_index() == 0) {
    state.counters["fg_fast_acquires"] =
        static_cast<double>(sched->fg_fast_acquires() - fg_fast_base);
    state.counters["fg_slow_acquires"] =
        static_cast<double>(sched->fg_slow_acquires() - fg_slow_base);
    state.counters["bg_fast_acquires"] =
        static_cast<double>(sched->bg_fast_acquires() - bg_fast_base);
    state.counters["bg_slow_acquires"] =
        static_cast<double>(sched->bg_slow_acquires() - bg_slow_base);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthAcquire)->Arg(64)->Arg(1)->Threads(1)->Threads(4);

void BM_JournalTransaction(benchmark::State& state) {
  NvmmDevice dev(SpinConfig());
  Journal journal(&dev, 4096, 4 << 20);
  (void)journal.Format();
  for (auto _ : state) {
    Transaction txn = journal.Begin();
    (void)txn.LogOldValue(16 << 20, state.range(0));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalTransaction)->Arg(8)->Arg(64)->Arg(256);

void BM_BufferedWrite(benchmark::State& state) {
  NvmmDevice dev(SpinConfig(256 << 20));
  HinfsOptions opts;
  opts.buffer_bytes = 64 << 20;
  DramBufferManager mgr(&dev, opts, [](uint64_t, uint64_t fb) -> Result<uint64_t> {
    return (64ull << 20) + fb * kBlockSize;
  });
  std::vector<uint8_t> buf(state.range(0), 0x11);
  Rng rng(5);
  for (auto _ : state) {
    const uint64_t fb = rng.Below(4096);
    benchmark::DoNotOptimize(
        mgr.Write(1, fb, 0, buf.data(), buf.size(), kNoNvmmAddr));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BufferedWrite)->Arg(64)->Arg(4096);

void BM_DirectWrite(benchmark::State& state) {
  NvmmDevice dev(SpinConfig(256 << 20));
  std::vector<uint8_t> buf(state.range(0), 0x11);
  Rng rng(6);
  for (auto _ : state) {
    const uint64_t off = rng.Below(4096) * kBlockSize;
    benchmark::DoNotOptimize(dev.StorePersistent(off, buf.data(), buf.size()));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DirectWrite)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace hinfs

// Custom main instead of BENCHMARK_MAIN so this bench shares the fleet-wide
// `--json <path>` convention: it maps onto google-benchmark's JSON reporter.
// Unknown arguments still fail fast via ReportUnrecognizedArguments.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json requires a file path\n");
        return 2;
      }
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(argv[i]);
    }
  }
  for (std::string& s : storage) {
    args.push_back(s.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) {
    return 2;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
