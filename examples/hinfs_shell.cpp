// hinfs_shell: an interactive shell over a HiNFS instance on emulated NVMM.
// Demonstrates the full public API surface, plus live buffer/device
// introspection and the offline fsck.
//
//   ./build/examples/hinfs_shell            # interactive
//   echo "mkdir /a; write /a/f hello; cat /a/f; stat /a/f; df" | ./build/examples/hinfs_shell
//
// Commands: ls [path], cat <path>, write <path> <text>, append <path> <text>,
//           mkdir <path>, rm <path>, rmdir <path>, mv <from> <to>,
//           stat <path>, truncate <path> <size>, fsync <path>, sync,
//           df, buf, fsck, help, quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fs/pmfs/fsck.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"

using namespace hinfs;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  ls [path]              list directory\n"
      "  cat <path>             print file contents\n"
      "  write <path> <text>    create/overwrite file (lazy-persistent)\n"
      "  append <path> <text>   append to file\n"
      "  mkdir/rm/rmdir/mv      namespace operations\n"
      "  stat <path>            inode attributes\n"
      "  truncate <path> <n>    resize file\n"
      "  fsync <path>           make one file durable\n"
      "  sync                   flush the whole buffer\n"
      "  df                     device + space usage\n"
      "  buf                    DRAM write-buffer statistics\n"
      "  fsck                   offline consistency check (flushes first)\n"
      "  help, quit\n");
}

int RunCommand(Vfs& vfs, HinfsFs& fs, NvmmDevice& nvmm, const std::vector<std::string>& args) {
  const std::string& cmd = args[0];
  auto need = [&](size_t n) {
    if (args.size() < n + 1) {
      std::printf("error: %s needs %zu argument(s)\n", cmd.c_str(), n);
      return false;
    }
    return true;
  };

  if (cmd == "help") {
    PrintHelp();
  } else if (cmd == "ls") {
    const std::string path = args.size() > 1 ? args[1] : "/";
    auto entries = vfs.ReadDir(path);
    if (!entries.ok()) {
      std::printf("error: %s\n", entries.status().ToString().c_str());
      return 1;
    }
    for (const DirEntry& e : *entries) {
      std::printf("%c %8llu  %s\n", e.type == FileType::kDirectory ? 'd' : '-',
                  (unsigned long long)e.ino, e.name.c_str());
    }
  } else if (cmd == "cat") {
    if (!need(1)) {
      return 1;
    }
    auto content = vfs.ReadFileToString(args[1]);
    if (!content.ok()) {
      std::printf("error: %s\n", content.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", content->c_str());
  } else if (cmd == "write" || cmd == "append") {
    if (!need(2)) {
      return 1;
    }
    std::string text = args[2];
    for (size_t i = 3; i < args.size(); i++) {
      text += " " + args[i];
    }
    Status st;
    if (cmd == "write") {
      st = vfs.WriteFile(args[1], text);
    } else {
      Result<int> fd = vfs.Open(args[1], kWrOnly | kCreate | kAppend);
      st = fd.ok() ? vfs.Write(*fd, text.data(), text.size()).status() : fd.status();
      if (fd.ok()) {
        (void)vfs.Close(*fd);
      }
    }
    std::printf("%s\n", st.ToString().c_str());
  } else if (cmd == "mkdir") {
    if (!need(1)) {
      return 1;
    }
    std::printf("%s\n", vfs.Mkdir(args[1]).ToString().c_str());
  } else if (cmd == "rm") {
    if (!need(1)) {
      return 1;
    }
    std::printf("%s\n", vfs.Unlink(args[1]).ToString().c_str());
  } else if (cmd == "rmdir") {
    if (!need(1)) {
      return 1;
    }
    std::printf("%s\n", vfs.Rmdir(args[1]).ToString().c_str());
  } else if (cmd == "mv") {
    if (!need(2)) {
      return 1;
    }
    std::printf("%s\n", vfs.Rename(args[1], args[2]).ToString().c_str());
  } else if (cmd == "stat") {
    if (!need(1)) {
      return 1;
    }
    auto attr = vfs.Stat(args[1]);
    if (!attr.ok()) {
      std::printf("error: %s\n", attr.status().ToString().c_str());
      return 1;
    }
    std::printf("ino=%llu type=%s size=%llu nlink=%u\n", (unsigned long long)attr->ino,
                attr->type == FileType::kDirectory ? "dir" : "file",
                (unsigned long long)attr->size, attr->nlink);
  } else if (cmd == "truncate") {
    if (!need(2)) {
      return 1;
    }
    auto fd = vfs.Open(args[1], kRdWr);
    if (!fd.ok()) {
      std::printf("error: %s\n", fd.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", vfs.Ftruncate(*fd, std::stoull(args[2])).ToString().c_str());
    (void)vfs.Close(*fd);
  } else if (cmd == "fsync") {
    if (!need(1)) {
      return 1;
    }
    auto fd = vfs.Open(args[1], kRdWr);
    if (!fd.ok()) {
      std::printf("error: %s\n", fd.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", vfs.Fsync(*fd).ToString().c_str());
    (void)vfs.Close(*fd);
  } else if (cmd == "sync") {
    std::printf("%s\n", vfs.SyncFs().ToString().c_str());
  } else if (cmd == "df") {
    std::printf("nvmm: %zu MB device, %llu free data blocks, %llu MB flushed, %llu MB loaded\n",
                nvmm.size() >> 20, (unsigned long long)fs.free_data_blocks(),
                (unsigned long long)(nvmm.flushed_bytes() >> 20),
                (unsigned long long)(nvmm.loaded_bytes() >> 20));
  } else if (cmd == "buf") {
    auto& b = fs.buffer();
    std::printf("buffer: %zu shard(s), %zu/%zu frames free, hits=%llu misses=%llu "
                "wb=%llu blocks (%llu lines), fetched=%llu lines, stalls=%llu, "
                "lock_contended=%llu\n",
                b.shard_count(), b.free_blocks(), b.capacity_blocks(),
                (unsigned long long)b.buffer_hits(), (unsigned long long)b.buffer_misses(),
                (unsigned long long)b.writeback_blocks(),
                (unsigned long long)b.writeback_lines(),
                (unsigned long long)b.fetched_lines(), (unsigned long long)b.stall_count(),
                (unsigned long long)b.lock_contended());
    std::printf("model:  eager=%llu lazy=%llu decisions=%llu accuracy=%.1f%%\n",
                (unsigned long long)fs.stats().Get(kStatEagerWrites),
                (unsigned long long)fs.stats().Get(kStatLazyWrites),
                (unsigned long long)fs.checker().decisions(),
                fs.checker().AccuracyRate() * 100.0);
  } else if (cmd == "fsck") {
    if (Status st = vfs.SyncFs(); !st.ok()) {
      std::printf("sync: %s\n", st.ToString().c_str());
      return 1;
    }
    auto report = FsckPmfs(&nvmm);
    if (!report.ok()) {
      std::printf("fsck failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->Summary().c_str());
    for (const std::string& e : report->errors) {
      std::printf("  E %s\n", e.c_str());
    }
    for (const std::string& w : report->warnings) {
      std::printf("  W %s\n", w.c_str());
    }
  } else {
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  NvmmConfig ncfg;
  ncfg.size_bytes = 256ull << 20;
  ncfg.latency_mode = LatencyMode::kSpin;
  NvmmDevice nvmm(ncfg);
  HinfsOptions hopts;
  hopts.buffer_bytes = 32ull << 20;
  // HINFS_BUFFER_SHARDS / HINFS_WRITEBACK_THREADS / HINFS_STEAL_FRAMES.
  hopts = HinfsOptions::FromEnv(hopts);
  auto fs = HinfsFs::Format(&nvmm, hopts);
  if (!fs.ok()) {
    std::fprintf(stderr, "format: %s\n", fs.status().ToString().c_str());
    return 1;
  }
  Vfs vfs(fs->get());
  std::printf("HiNFS shell on a %zu MB emulated NVMM device. Type 'help'.\n",
              nvmm.size() >> 20);

  std::string line;
  while (true) {
    std::printf("hinfs> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    // Allow ';'-separated command lists for scripting.
    std::stringstream commands(line);
    std::string one;
    bool quit = false;
    while (std::getline(commands, one, ';')) {
      std::stringstream ss(one);
      std::vector<std::string> args;
      std::string tok;
      while (ss >> tok) {
        args.push_back(tok);
      }
      if (args.empty()) {
        continue;
      }
      if (args[0] == "quit" || args[0] == "exit") {
        quit = true;
        break;
      }
      (void)RunCommand(vfs, **fs, nvmm, args);
    }
    if (quit) {
      break;
    }
  }
  (void)vfs.Unmount();
  std::printf("bye\n");
  return 0;
}
