// DramBufferManager: the NVMM-aware Write Buffer (paper §3.2).
//
// Owns a pool of 4 KB DRAM blocks, the per-file DRAM Block Index (a B+tree of
// file-block -> buffer entry, paper Fig. 5), the Cacheline Bitmaps, the LRW
// replacement list, and the background writeback threads.
//
// Mechanisms reproduced from the paper:
//  - LRW (Least Recently Written) victim selection; written blocks move to the
//    MRW position.
//  - Cacheline Level Fetch/Writeback (CLFW): a partially-overwritten line of a
//    non-resident block fetches only that line from NVMM; writeback flushes
//    only dirty lines. With clfw=false (HiNFS-NCLFW) fetch and writeback are
//    whole-block.
//  - Background writeback: wakes when free blocks < Low_f (5 %), reclaims from
//    the LRW end until free > High_f (20 %), then writes back blocks dirty for
//    longer than 30 s; also wakes every 5 s. Foreground writers stall only when
//    the pool is exhausted.
//
// Scalability: the buffer is split into HinfsOptions::buffer_shards independent
// shards keyed by hash(ino, file_block). Each shard owns its own mutex,
// condition variables, slice of the frame pool, residency lists (T1/T2), ghost
// lists, ARC target, watermarks, and statistics, so Write/Read/Contains on
// blocks in different shards never contend. buffer_shards=1 reproduces the
// pre-sharding single-lock behaviour exactly (eviction order, CLFW line
// counts, stall semantics).
//
// Lock discipline: at most one shard mutex is ever held by a thread, and
// whole-buffer operations (FlushFile/FlushAll/DiscardFile) visit shards in
// fixed index order, fully draining one shard before touching the next. Data
// is flushed to NVMM with no shard mutex held (entries are pinned by the
// `writing` flag), so the EnsureBlockFn callback may take file-system locks
// (e.g. PMFS map_mu_) without ordering against the shard locks. The writeback
// wakeup pair (wb_mu_/wb_cv_) is a leaf: it is only ever the last lock taken.
//
// NVMM block allocation for never-written blocks is deferred to writeback time
// via the EnsureBlockFn callback (keeping allocation off the lazy-write
// critical path); a crash before writeback leaves a file-system-level hole,
// preserving ordered-mode semantics.

#ifndef SRC_HINFS_DRAM_BUFFER_H_
#define SRC_HINFS_DRAM_BUFFER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/hinfs/btree.h"
#include "src/hinfs/hinfs_options.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {

// Sentinel: the buffered block has no backing NVMM block yet.
inline constexpr uint64_t kNoNvmmAddr = UINT64_MAX;

class DramBufferManager {
 public:
  // Resolves (ino, file_block) to the byte address of a (possibly freshly
  // allocated) NVMM data block. Called from writeback context with no shard
  // mutex held; must be safe without the caller's file locks.
  using EnsureBlockFn = std::function<Result<uint64_t>(uint64_t ino, uint64_t file_block)>;

  DramBufferManager(NvmmDevice* nvmm, const HinfsOptions& options, EnsureBlockFn ensure_block);
  ~DramBufferManager();

  void StartBackgroundWriteback();
  void StopBackgroundWriteback();

  // Buffered (lazy-persistent) write of [offset, offset+len) within one file
  // block. `nvmm_addr` is the block's current NVMM address or kNoNvmmAddr.
  // Returns the number of cacheline writes performed (N_cw input to the
  // Buffer Benefit Model). Blocks if the shard's frame slice is exhausted
  // until writeback frees space.
  Result<uint32_t> Write(uint64_t ino, uint64_t file_block, size_t offset, const void* src,
                         size_t len, uint64_t nvmm_addr);

  // If (ino, file_block) is buffered, copies [offset, offset+len) into dst,
  // merging DRAM and NVMM by Cacheline Bitmap runs, and returns true.
  // Returns false when not buffered (caller reads NVMM directly).
  Result<bool> Read(uint64_t ino, uint64_t file_block, size_t offset, void* dst, size_t len,
                    uint64_t nvmm_addr);

  bool Contains(uint64_t ino, uint64_t file_block);

  // Flushes and evicts all buffered blocks of `ino` (fsync / mmap). Waits for
  // in-flight background writeback of the same file. Visits shards in index
  // order, draining each completely before moving on.
  Status FlushFile(uint64_t ino);

  // Flushes and evicts one block (the paper's case-(1) consistency rule:
  // an O_SYNC write to a buffered block updates DRAM, then evicts).
  Status FlushBlock(uint64_t ino, uint64_t file_block);

  // Flushes everything (sync(2) / unmount).
  Status FlushAll();

  // Drops buffered blocks of `ino` with file_block >= from_block without
  // writing them back (unlink / truncate: deleted data never reaches NVMM).
  Status DiscardFile(uint64_t ino, uint64_t from_block = 0);

  // --- introspection ---------------------------------------------------------
  size_t capacity_blocks() const { return capacity_blocks_; }
  size_t free_blocks() const;
  size_t shard_count() const { return shards_.size(); }
  // Which shard a (file, block) key lives in, and that shard's frame slice.
  uint32_t ShardOf(uint64_t ino, uint64_t file_block) const;
  size_t shard_capacity(uint32_t shard) const;
  uint64_t buffer_hits() const;
  uint64_t buffer_misses() const;
  uint64_t writeback_blocks() const;
  uint64_t writeback_lines() const;
  uint64_t fetched_lines() const;
  uint64_t stall_count() const;
  // Shard-mutex acquisitions that found the lock already held. The direct
  // measure of buffer lock contention; sharding exists to drive this down.
  uint64_t lock_contended() const;

 private:
  struct Entry {
    uint64_t ino = 0;
    uint64_t file_block = 0;
    uint64_t nvmm_addr = kNoNvmmAddr;
    uint64_t valid = 0;  // lines present in DRAM
    uint64_t dirty = 0;  // lines modified since fetch
    uint32_t dram_index = 0;
    bool writing = false;  // being flushed by a writeback thread
    uint64_t last_written_ns = 0;
    uint32_t freq = 0;     // write-reference count (LFU)
    uint8_t arc_list = 1;  // ARC: 1 = T1 (recent), 2 = T2 (frequent)
    Entry* lrw_prev = nullptr;  // residency list: head = eviction end, tail = MRW
    Entry* lrw_next = nullptr;
  };

  struct EntryList {
    Entry head;  // sentinel
    size_t size = 0;
    EntryList() {
      head.lrw_prev = &head;
      head.lrw_next = &head;
    }
  };

  // Monotonic per-shard counters. Relaxed atomics: the public accessors sum
  // them with no lock held, concurrently with writeback threads bumping them
  // (the pre-sharding code read plain uint64_t fields here — a data race).
  // The whole block is cache-line-aligned so shards never false-share stats.
  struct alignas(64) ShardStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> stalls{0};
    std::atomic<uint64_t> writeback_blocks{0};
    std::atomic<uint64_t> writeback_lines{0};
    std::atomic<uint64_t> fetched_lines{0};
    std::atomic<uint64_t> lock_contended{0};
  };

  // One independent slice of the buffer: everything the pre-sharding manager
  // kept under its global mutex, scoped to the keys hashing here.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable free_cv;        // signaled when frames are freed
    std::condition_variable write_done_cv;  // signaled when a flush completes
    std::vector<uint32_t> free_frames;      // global frame indices owned here
    std::atomic<size_t> free_count{0};      // mirrors free_frames.size(); read lock-free
    std::unordered_map<uint64_t, std::unique_ptr<BTreeMap<Entry*>>> index;  // per-file B+tree
    // Residency lists. LRW/FIFO/LFU use t1 only; ARC splits entries into
    // t1 (seen once) and t2 (seen again) with ghost lists b1/b2 steering the
    // adaptive target arc_p (T1's share of this shard).
    EntryList t1;
    EntryList t2;
    std::list<uint64_t> b1_fifo;
    std::list<uint64_t> b2_fifo;
    std::unordered_set<uint64_t> b1;
    std::unordered_set<uint64_t> b2;
    size_t arc_p = 0;
    size_t resident = 0;
    size_t capacity = 0;  // frames owned by this shard
    size_t low = 0;       // per-shard Low_f watermark (blocks)
    size_t high = 0;      // per-shard High_f watermark (blocks)
    ShardStats stats;
  };

  Shard& ShardForKey(uint64_t ino, uint64_t file_block) {
    return *shards_[ShardOf(ino, file_block)];
  }

  // Acquires a shard mutex, counting contended acquisitions (try_lock first;
  // one relaxed increment on the slow path only, so the fast path costs the
  // same as a plain lock()).
  static std::unique_lock<std::mutex> LockShard(Shard& s) {
    std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      s.stats.lock_contended.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    return lock;
  }
  uint8_t* DataFor(const Entry& e) { return pool_.get() + size_t{e.dram_index} * kBlockSize; }

  // Free-frame slice maintenance (shard mutex held). The atomic mirror lets
  // watermark checks and free_blocks() read without taking shard locks.
  uint32_t PopFreeFrameLocked(Shard& s);
  void PushFreeFrameLocked(Shard& s, uint32_t frame);

  // All helpers below require s.mu held.
  Entry* FindLocked(Shard& s, uint64_t ino, uint64_t file_block);
  Result<Entry*> CreateLocked(Shard& s, std::unique_lock<std::mutex>& lock, uint64_t ino,
                              uint64_t file_block, uint64_t nvmm_addr);
  void DetachLocked(Shard& s, Entry* e);  // removes from index + lists, frees the frame
  static void ListUnlink(EntryList& list, Entry* e);
  static void ListPushMru(EntryList& list, Entry* e);

  // Replacement-policy hooks (per shard).
  void OnInsertLocked(Shard& s, Entry* e);
  void OnWriteHitLocked(Shard& s, Entry* e);
  // Picks up to `want` evictable (non-writing) entries in policy order and
  // marks them writing.
  std::vector<Entry*> PickVictimsLocked(Shard& s, size_t want);
  static uint64_t GhostKey(const Entry& e) { return (e.ino << 32) ^ e.file_block; }
  void GhostRecordLocked(Shard& s, Entry* e);
  static void GhostTrimLocked(std::list<uint64_t>& fifo, std::unordered_set<uint64_t>& set,
                              size_t limit);

  // Flush one entry's dirty lines to NVMM. Called WITHOUT s.mu held; the entry
  // must be marked writing and belong to `s`. Returns lines flushed.
  Result<uint32_t> FlushEntryData(Shard& s, Entry* e);

  // Flushes `victims` (all from shard `s`, already marked writing) outside the
  // lock, then detaches them. Shared by foreground flush and the background
  // engine.
  Status FlushEntries(Shard& s, std::vector<Entry*> victims);

  // The per-shard body of FlushFile (all=false) / FlushAll (all=true): loops
  // collecting victims of `ino` (or everything) in this shard, waiting out
  // in-flight writeback, until the shard holds none of them.
  Status DrainShard(Shard& s, bool all, uint64_t ino);

  // Wakes the background engine. Locks wb_mu_ empty first so a worker between
  // its predicate check and its wait cannot miss the notification.
  void KickWriteback();
  bool AnyAssignedShardLow(size_t worker) const;
  void ProcessShard(Shard& s);
  void WritebackThread(size_t worker);

  NvmmDevice* nvmm_;
  HinfsOptions options_;
  EnsureBlockFn ensure_block_;
  size_t capacity_blocks_;

  std::unique_ptr<uint8_t[]> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;  // size is a power of two
  uint32_t shard_mask_ = 0;

  // Background-engine wakeup. Leaf lock: never held while taking a shard lock.
  std::mutex wb_mu_;
  std::condition_variable wb_cv_;

  std::mutex threads_mu_;  // guards threads_ across Start/Stop
  std::vector<std::thread> threads_;
  size_t wb_worker_count_ = 0;          // shard round-robin stride
  std::atomic<bool> wb_running_{false}; // any background workers alive?
  std::atomic<bool> stop_{false};
};

}  // namespace hinfs

#endif  // SRC_HINFS_DRAM_BUFFER_H_
