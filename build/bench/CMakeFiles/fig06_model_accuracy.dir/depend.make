# Empty dependencies file for fig06_model_accuracy.
# This may be replaced when dependencies are built.
