# Empty compiler generated dependencies file for mmap_test.
# This may be replaced when dependencies are built.
