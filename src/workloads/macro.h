// Macrobenchmarks (Table 1): Postmark, a TPC-C-style OLTP load, Kernel-Grep,
// and Kernel-Make. Each reports elapsed time, the metric Fig. 13 normalizes.

#ifndef SRC_WORKLOADS_MACRO_H_
#define SRC_WORKLOADS_MACRO_H_

#include "src/workloads/workload.h"

namespace hinfs {

// --- Postmark ------------------------------------------------------------------
// Create a pool of small files, run read/append + create/delete transactions,
// then delete everything. Mail/web-service style: many short-lived files.
struct PostmarkConfig {
  size_t nfiles = 300;
  size_t min_size = 512;
  size_t max_size = 16 * 1024;
  size_t transactions = 1500;
  size_t io_size = 4096;
  double read_bias = 0.5;    // read vs append inside a transaction
  double create_bias = 0.5;  // create vs delete inside a transaction
  uint64_t seed = 11;
};
Result<WorkloadResult> RunPostmark(Vfs* vfs, const PostmarkConfig& config);

// --- TPC-C-lite -----------------------------------------------------------------
// A miniature OLTP engine: a heap table file plus a write-ahead log. Each
// transaction reads and rewrites a few table pages, appends a WAL record, and
// fsyncs the WAL (the >90 % fsync-byte behaviour of Fig. 2).
struct TpccConfig {
  size_t warehouses = 3;
  size_t table_pages_per_wh = 256;  // 1 MB per warehouse
  size_t transactions = 600;
  size_t pages_per_txn = 6;
  size_t wal_record_bytes = 512;
  size_t checkpoint_every = 100;  // table fsync cadence
  uint64_t seed = 12;
};
Result<WorkloadResult> RunTpcc(Vfs* vfs, const TpccConfig& config);

// --- Kernel tree workloads ---------------------------------------------------------
struct KernelTreeConfig {
  size_t dirs = 24;
  size_t files_per_dir = 16;
  size_t mean_source_bytes = 8 * 1024;
  size_t headers = 40;
  size_t mean_header_bytes = 12 * 1024;
  uint64_t seed = 13;
};
// Builds /src/dN/fM.c and /include/hK.h.
Status BuildKernelTree(Vfs* vfs, const KernelTreeConfig& config);

// Kernel-Grep: scan every file for an absent pattern (read-only).
Result<WorkloadResult> RunKernelGrep(Vfs* vfs, const KernelTreeConfig& config);

// Kernel-Make: per source file, read it plus a few headers and write an object
// file; finally link (concatenate objects into one image).
Result<WorkloadResult> RunKernelMake(Vfs* vfs, const KernelTreeConfig& config);

}  // namespace hinfs

#endif  // SRC_WORKLOADS_MACRO_H_
