file(REMOVE_RECURSE
  "CMakeFiles/hinfs_common.dir/clock.cc.o"
  "CMakeFiles/hinfs_common.dir/clock.cc.o.d"
  "CMakeFiles/hinfs_common.dir/histogram.cc.o"
  "CMakeFiles/hinfs_common.dir/histogram.cc.o.d"
  "CMakeFiles/hinfs_common.dir/logging.cc.o"
  "CMakeFiles/hinfs_common.dir/logging.cc.o.d"
  "CMakeFiles/hinfs_common.dir/rng.cc.o"
  "CMakeFiles/hinfs_common.dir/rng.cc.o.d"
  "CMakeFiles/hinfs_common.dir/stats.cc.o"
  "CMakeFiles/hinfs_common.dir/stats.cc.o.d"
  "CMakeFiles/hinfs_common.dir/status.cc.o"
  "CMakeFiles/hinfs_common.dir/status.cc.o.d"
  "libhinfs_common.a"
  "libhinfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
