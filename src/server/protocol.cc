#include "src/server/protocol.h"

#include <cstring>

namespace hinfs {
namespace server {
namespace {

void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; i--) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; i--) {
    v = (v << 8) | p[i];
  }
  return v;
}

Status Malformed(const char* what) {
  return Status(ErrorCode::kInvalidArgument, std::string("malformed frame: ") + what);
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing:
      return "ping";
    case Opcode::kOpen:
      return "open";
    case Opcode::kClose:
      return "close";
    case Opcode::kRead:
      return "read";
    case Opcode::kWrite:
      return "write";
    case Opcode::kPread:
      return "pread";
    case Opcode::kPwrite:
      return "pwrite";
    case Opcode::kSeek:
      return "seek";
    case Opcode::kFsync:
      return "fsync";
    case Opcode::kFtruncate:
      return "ftruncate";
    case Opcode::kFstat:
      return "fstat";
    case Opcode::kMkdir:
      return "mkdir";
    case Opcode::kRmdir:
      return "rmdir";
    case Opcode::kUnlink:
      return "unlink";
    case Opcode::kRename:
      return "rename";
    case Opcode::kStat:
      return "stat";
    case Opcode::kReadDir:
      return "readdir";
    case Opcode::kExists:
      return "exists";
    case Opcode::kSyncFs:
      return "syncfs";
    case Opcode::kFdatasync:
      return "fdatasync";
    case Opcode::kHello:
      return "hello";
  }
  return "?";
}

void EncodeRequest(const Request& req, std::string* out) {
  const uint32_t frame_len = static_cast<uint32_t>(kReqHeaderBytes + req.path.size() +
                                                   req.path2.size() + req.data.size());
  out->reserve(out->size() + kFrameLenBytes + frame_len);
  PutU32(frame_len, out);
  PutU64(req.request_id, out);
  out->push_back(static_cast<char>(req.opcode));
  out->push_back(0);  // pad
  PutU16(static_cast<uint16_t>(req.path.size()), out);
  PutU16(static_cast<uint16_t>(req.path2.size()), out);
  PutU16(0, out);  // pad2
  PutU32(req.flags, out);
  PutU32(static_cast<uint32_t>(req.fd), out);
  PutU64(req.offset, out);
  PutU32(req.count, out);
  PutU32(static_cast<uint32_t>(req.data.size()), out);
  out->append(req.path);
  out->append(req.path2);
  out->append(req.data);
}

void EncodeResponse(const Response& resp, std::string* out) {
  const uint32_t frame_len = static_cast<uint32_t>(kRespHeaderBytes + resp.data.size());
  out->reserve(out->size() + kFrameLenBytes + frame_len);
  PutU32(frame_len, out);
  PutU64(resp.request_id, out);
  out->push_back(static_cast<char>(resp.opcode));
  out->push_back(static_cast<char>(ErrorToWire(resp.status)));
  PutU16(0, out);  // pad
  PutU32(static_cast<uint32_t>(resp.data.size()), out);
  PutU64(resp.r0, out);
  out->append(resp.data);
}

Status ParseFrameLen(const uint8_t* buf, size_t max_frame_bytes, uint32_t* frame_len) {
  *frame_len = GetU32(buf);
  if (*frame_len < kRespHeaderBytes || *frame_len > max_frame_bytes) {
    return Malformed("frame length out of bounds");
  }
  return OkStatus();
}

Status DecodeRequest(const uint8_t* payload, size_t len, Request* out) {
  if (len < kReqHeaderBytes) {
    return Malformed("request shorter than header");
  }
  out->request_id = GetU64(payload);
  const uint8_t op = payload[8];
  if (op < kMinOpcode || op > kMaxOpcode) {
    return Malformed("unknown opcode");
  }
  out->opcode = static_cast<Opcode>(op);
  if (payload[9] != 0) {
    return Malformed("nonzero pad");
  }
  const uint16_t path_len = GetU16(payload + 10);
  const uint16_t path2_len = GetU16(payload + 12);
  if (GetU16(payload + 14) != 0) {
    return Malformed("nonzero pad2");
  }
  out->flags = GetU32(payload + 16);
  out->fd = static_cast<int32_t>(GetU32(payload + 20));
  out->offset = GetU64(payload + 24);
  out->count = GetU32(payload + 32);
  const uint32_t data_len = GetU32(payload + 36);
  if (path_len > kMaxPathBytes || path2_len > kMaxPathBytes) {
    return Malformed("path too long");
  }
  if (data_len > kMaxDataBytes || out->count > kMaxDataBytes) {
    return Malformed("data section too large");
  }
  if (len != kReqHeaderBytes + path_len + path2_len + data_len) {
    return Malformed("length fields disagree with frame length");
  }
  const char* p = reinterpret_cast<const char*>(payload) + kReqHeaderBytes;
  out->path.assign(p, path_len);
  out->path2.assign(p + path_len, path2_len);
  out->data.assign(p + path_len + path2_len, data_len);
  return OkStatus();
}

Status DecodeResponse(const uint8_t* payload, size_t len, Response* out) {
  if (len < kRespHeaderBytes) {
    return Malformed("response shorter than header");
  }
  out->request_id = GetU64(payload);
  const uint8_t op = payload[8];
  if (op < kMinOpcode || op > kMaxOpcode) {
    return Malformed("unknown opcode");
  }
  out->opcode = static_cast<Opcode>(op);
  out->status = WireToError(payload[9]);
  if (GetU16(payload + 10) != 0) {
    return Malformed("nonzero pad");
  }
  const uint32_t data_len = GetU32(payload + 12);
  out->r0 = GetU64(payload + 16);
  if (data_len > kMaxDataBytes || len != kRespHeaderBytes + data_len) {
    return Malformed("length fields disagree with frame length");
  }
  out->data.assign(reinterpret_cast<const char*>(payload) + kRespHeaderBytes, data_len);
  return OkStatus();
}

void AppendAttr(const InodeAttr& attr, std::string* out) {
  PutU64(attr.ino, out);
  PutU64(attr.size, out);
  PutU64(attr.mtime_ns, out);
  PutU32(attr.nlink, out);
  out->push_back(static_cast<char>(attr.type));
  out->append(3, '\0');
}

Status ParseAttr(const uint8_t* buf, size_t len, InodeAttr* out) {
  if (len != kWireAttrBytes) {
    return Malformed("attr size");
  }
  out->ino = GetU64(buf);
  out->size = GetU64(buf + 8);
  out->mtime_ns = GetU64(buf + 16);
  out->nlink = GetU32(buf + 24);
  const uint8_t type = buf[28];
  if (type != static_cast<uint8_t>(FileType::kRegular) &&
      type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Malformed("attr file type");
  }
  out->type = static_cast<FileType>(type);
  return OkStatus();
}

void AppendDirEntries(const std::vector<DirEntry>& entries, std::string* out) {
  PutU32(static_cast<uint32_t>(entries.size()), out);
  for (const DirEntry& e : entries) {
    PutU64(e.ino, out);
    out->push_back(static_cast<char>(e.type));
    out->push_back(static_cast<char>(e.name.size()));
    out->append(e.name);
  }
}

Status ParseDirEntries(const uint8_t* buf, size_t len, std::vector<DirEntry>* out) {
  if (len < 4) {
    return Malformed("dirent count");
  }
  const uint32_t count = GetU32(buf);
  size_t off = 4;
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    if (off + 10 > len) {
      return Malformed("dirent header");
    }
    DirEntry e;
    e.ino = GetU64(buf + off);
    const uint8_t type = buf[off + 8];
    const uint8_t name_len = buf[off + 9];
    if (type != static_cast<uint8_t>(FileType::kRegular) &&
        type != static_cast<uint8_t>(FileType::kDirectory)) {
      return Malformed("dirent file type");
    }
    e.type = static_cast<FileType>(type);
    off += 10;
    if (off + name_len > len) {
      return Malformed("dirent name");
    }
    e.name.assign(reinterpret_cast<const char*>(buf) + off, name_len);
    off += name_len;
    out->push_back(std::move(e));
  }
  if (off != len) {
    return Malformed("dirent trailing bytes");
  }
  return OkStatus();
}

uint8_t ErrorToWire(ErrorCode code) { return static_cast<uint8_t>(code); }

ErrorCode WireToError(uint8_t value) {
  if (value > static_cast<uint8_t>(ErrorCode::kIoError)) {
    return ErrorCode::kIoError;
  }
  return static_cast<ErrorCode>(value);
}

}  // namespace server
}  // namespace hinfs
