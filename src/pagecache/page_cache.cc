#include "src/pagecache/page_cache.h"

#include <cstring>

namespace hinfs {

PageCache::PageCache(BlockDevice* device, const PageCacheConfig& config)
    : device_(device), config_(config) {}

PageCache::~PageCache() {
  // Callers are expected to SyncAll() before destruction; destructor does not
  // write back (mirrors losing the page cache without sync).
}

size_t PageCache::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

void PageCache::TouchLocked(uint64_t block, Page& page) {
  lru_.erase(page.lru_pos);
  lru_.push_front(block);
  page.lru_pos = lru_.begin();
}

Result<PageCache::Page*> PageCache::GetPageLocked(uint64_t block, bool fill_from_device) {
  auto it = pages_.find(block);
  if (it != pages_.end()) {
    hits_++;
    TouchLocked(block, it->second);
    return &it->second;
  }
  misses_++;
  HINFS_RETURN_IF_ERROR(EvictIfNeededLocked());

  Page page;
  page.data.reset(new uint8_t[kBlockSize]);
  if (fill_from_device) {
    HINFS_RETURN_IF_ERROR(device_->ReadBlock(block, page.data.get()));
  } else {
    std::memset(page.data.get(), 0, kBlockSize);
  }
  lru_.push_front(block);
  page.lru_pos = lru_.begin();
  auto [inserted, ok] = pages_.emplace(block, std::move(page));
  (void)ok;
  return &inserted->second;
}

Status PageCache::EvictIfNeededLocked() {
  if (config_.capacity_pages == 0) {
    return OkStatus();
  }
  while (pages_.size() >= config_.capacity_pages) {
    const uint64_t victim = lru_.back();
    auto it = pages_.find(victim);
    if (it->second.dirty) {
      HINFS_RETURN_IF_ERROR(WritebackLocked(victim, it->second));
    }
    lru_.pop_back();
    pages_.erase(it);
  }
  return OkStatus();
}

Status PageCache::WritebackLocked(uint64_t block, Page& page) {
  HINFS_RETURN_IF_ERROR(device_->WriteBlock(block, page.data.get()));
  page.dirty = false;
  dirty_count_--;
  writebacks_++;
  return OkStatus();
}

Status PageCache::ThrottleDirtyLocked() {
  if (config_.max_dirty_pages == 0 || dirty_count_ <= config_.max_dirty_pages) {
    return OkStatus();
  }
  // Foreground throttling: write back the least-recently-used dirty pages
  // until back under 3/4 of the limit (hysteresis).
  const size_t target = config_.max_dirty_pages * 3 / 4;
  for (auto it = lru_.rbegin(); it != lru_.rend() && dirty_count_ > target; ++it) {
    auto pit = pages_.find(*it);
    if (pit != pages_.end() && pit->second.dirty) {
      HINFS_RETURN_IF_ERROR(WritebackLocked(*it, pit->second));
    }
  }
  return OkStatus();
}

Status PageCache::Read(uint64_t block, size_t offset, void* dst, size_t len) {
  if (offset + len > kBlockSize) {
    return Status(ErrorCode::kInvalidArgument, "page cache read crosses page");
  }
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(Page * page, GetPageLocked(block, /*fill_from_device=*/true));
  std::memcpy(dst, page->data.get() + offset, len);  // second copy: page -> user
  return OkStatus();
}

Status PageCache::Write(uint64_t block, size_t offset, const void* src, size_t len) {
  if (offset + len > kBlockSize) {
    return Status(ErrorCode::kInvalidArgument, "page cache write crosses page");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Fetch-before-write: a partial write to a non-resident page must read the
  // whole page from the device first.
  const bool full_overwrite = offset == 0 && len == kBlockSize;
  HINFS_ASSIGN_OR_RETURN(Page * page, GetPageLocked(block, /*fill_from_device=*/!full_overwrite));
  std::memcpy(page->data.get() + offset, src, len);  // first copy: user -> page
  if (!page->dirty) {
    page->dirty = true;
    dirty_count_++;
  }
  return ThrottleDirtyLocked();
}

Status PageCache::SyncPage(uint64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(block);
  if (it == pages_.end() || !it->second.dirty) {
    return OkStatus();
  }
  return WritebackLocked(block, it->second);
}

Status PageCache::SyncAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [block, page] : pages_) {
    if (page.dirty) {
      HINFS_RETURN_IF_ERROR(WritebackLocked(block, page));
    }
  }
  return OkStatus();
}

void PageCache::Discard(uint64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(block);
  if (it == pages_.end()) {
    return;
  }
  if (it->second.dirty) {
    dirty_count_--;
  }
  lru_.erase(it->second.lru_pos);
  pages_.erase(it);
}

Status PageCache::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [block, page] : pages_) {
    if (page.dirty) {
      HINFS_RETURN_IF_ERROR(WritebackLocked(block, page));
    }
  }
  pages_.clear();
  lru_.clear();
  return OkStatus();
}

}  // namespace hinfs
