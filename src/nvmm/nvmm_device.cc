#include "src/nvmm/nvmm_device.h"

#include <cstring>

namespace hinfs {

NvmmDevice::NvmmDevice(const NvmmConfig& config)
    : size_(config.size_bytes),
      flush_instruction_(config.flush_instruction),
      latency_(config.latency_mode, config.write_latency_ns),
      bandwidth_(config.latency_mode, config.write_bandwidth_bytes_per_sec),
      volatile_image_(new uint8_t[config.size_bytes]()) {
  if (config.qos.enabled()) {
    qos_ = std::make_unique<qos::QosScheduler>(config.latency_mode, config.qos);
  }
  if (config.track_persistence) {
    shadow_image_.reset(new uint8_t[config.size_bytes]());
  }
}

Status NvmmDevice::CheckRange(uint64_t offset, size_t len) const {
  if (offset > size_ || len > size_ - offset) {
    return Status(ErrorCode::kOutOfRange, "nvmm access beyond device");
  }
  return OkStatus();
}

Status NvmmDevice::Load(uint64_t offset, void* dst, size_t len) {
  HINFS_RETURN_IF_ERROR(CheckRange(offset, len));
  std::memcpy(dst, volatile_image_.get() + offset, len);
  loaded_bytes_.fetch_add(len, std::memory_order_relaxed);
  return OkStatus();
}

Status NvmmDevice::Store(uint64_t offset, const void* src, size_t len) {
  HINFS_RETURN_IF_ERROR(CheckRange(offset, len));
  std::memcpy(volatile_image_.get() + offset, src, len);
  if (auto t = trace(); t != nullptr) {
    t->RecordStore(PersistEventType::kStore, offset, len, src);
  }
  return OkStatus();
}

Status NvmmDevice::LoadAtomic(uint64_t offset, void* dst, size_t len) {
  HINFS_RETURN_IF_ERROR(CheckRange(offset, len));
  if (offset % sizeof(uint64_t) != 0 || len % sizeof(uint64_t) != 0) {
    return Status(ErrorCode::kInvalidArgument, "atomic nvmm access must be 8-byte aligned");
  }
  auto* words = reinterpret_cast<uint64_t*>(volatile_image_.get() + offset);
  auto* out = static_cast<uint8_t*>(dst);
  for (size_t i = 0; i < len / sizeof(uint64_t); i++) {
    const uint64_t w = std::atomic_ref<uint64_t>(words[i]).load(std::memory_order_relaxed);
    std::memcpy(out + i * sizeof(uint64_t), &w, sizeof(w));
  }
  loaded_bytes_.fetch_add(len, std::memory_order_relaxed);
  return OkStatus();
}

Status NvmmDevice::StoreAtomic(uint64_t offset, const void* src, size_t len) {
  HINFS_RETURN_IF_ERROR(CheckRange(offset, len));
  if (offset % sizeof(uint64_t) != 0 || len % sizeof(uint64_t) != 0) {
    return Status(ErrorCode::kInvalidArgument, "atomic nvmm access must be 8-byte aligned");
  }
  auto* words = reinterpret_cast<uint64_t*>(volatile_image_.get() + offset);
  auto* in = static_cast<const uint8_t*>(src);
  for (size_t i = 0; i < len / sizeof(uint64_t); i++) {
    uint64_t w;
    std::memcpy(&w, in + i * sizeof(uint64_t), sizeof(w));
    std::atomic_ref<uint64_t>(words[i]).store(w, std::memory_order_relaxed);
  }
  if (auto t = trace(); t != nullptr) {
    t->RecordStore(PersistEventType::kStoreAtomic, offset, len, src);
  }
  return OkStatus();
}

Status NvmmDevice::StoreAtomicPersistent(uint64_t offset, const void* src, size_t len) {
  HINFS_RETURN_IF_ERROR(StoreAtomic(offset, src, len));
  HINFS_RETURN_IF_ERROR(Flush(offset, len));
  Fence();
  return OkStatus();
}

Status NvmmDevice::Flush(uint64_t offset, size_t len) {
  const FlushRange range{offset, len};
  return FlushBatch(&range, 1);
}

Status NvmmDevice::FlushBatch(const FlushRange* ranges, size_t count) {
  // Validate everything and total the lines before touching any state, so a
  // bad range neither consumes bandwidth nor partially flushes.
  uint64_t total_lines = 0;
  for (size_t i = 0; i < count; i++) {
    if (ranges[i].len == 0) {
      continue;
    }
    HINFS_RETURN_IF_ERROR(CheckRange(ranges[i].offset, ranges[i].len));
    const uint64_t first_line = ranges[i].offset / kCachelineSize;
    const uint64_t last_line = (ranges[i].offset + ranges[i].len - 1) / kCachelineSize;
    total_lines += last_line - first_line + 1;
  }
  if (total_lines == 0) {
    return OkStatus();
  }

  // The paper's emulator injects the delay after each clflush; bandwidth is
  // consumed for the full flushed extent — one acquisition for the batch.
  // With CLFLUSHOPT/CLWB the per-line delays overlap and each range pays the
  // write latency once.
  if (qos_ != nullptr) {
    qos_->Acquire(qos::CurrentQosContext(), total_lines * kCachelineSize,
                  bandwidth_.bytes_per_sec());
  } else {
    bandwidth_.Acquire(total_lines * kCachelineSize);
  }
  for (size_t i = 0; i < count; i++) {
    if (ranges[i].len == 0) {
      continue;
    }
    const uint64_t first_line = ranges[i].offset / kCachelineSize;
    const uint64_t last_line = (ranges[i].offset + ranges[i].len - 1) / kCachelineSize;
    const uint64_t nlines = last_line - first_line + 1;
    if (flush_instruction_ == FlushInstruction::kClflush) {
      for (uint64_t line = first_line; line <= last_line; line++) {
        latency_.ChargeFlush();
      }
    } else {
      latency_.ChargeFlush();
    }
    if (shadow_image_ != nullptr) {
      for (uint64_t line = first_line; line <= last_line; line++) {
        const uint64_t off = line * kCachelineSize;
        std::memcpy(shadow_image_.get() + off, volatile_image_.get() + off, kCachelineSize);
      }
    }
    flushed_bytes_.fetch_add(nlines * kCachelineSize, std::memory_order_relaxed);
    flushed_lines_.fetch_add(nlines, std::memory_order_relaxed);
    const uint64_t unfenced =
        unfenced_lines_.fetch_add(nlines, std::memory_order_relaxed) + nlines;
    uint64_t prev_max = max_unfenced_lines_.load(std::memory_order_relaxed);
    while (unfenced > prev_max &&
           !max_unfenced_lines_.compare_exchange_weak(prev_max, unfenced,
                                                      std::memory_order_relaxed)) {
    }
    if (auto t = trace(); t != nullptr) {
      t->RecordFlush(ranges[i].offset, ranges[i].len, nlines);
    }
  }
  return OkStatus();
}

void NvmmDevice::Fence() {
  // mfence: ordering only. The emulator persists at Flush() time, so there is
  // nothing to do; the call documents ordering intent at the call sites.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  fence_count_.fetch_add(1, std::memory_order_relaxed);
  if (unfenced_lines_.exchange(0, std::memory_order_relaxed) > 0) {
    epoch_count_.fetch_add(1, std::memory_order_relaxed);
  }
  if (auto t = trace(); t != nullptr) {
    t->RecordFence();
  }
}

Status NvmmDevice::StorePersistent(uint64_t offset, const void* src, size_t len) {
  HINFS_RETURN_IF_ERROR(Store(offset, src, len));
  HINFS_RETURN_IF_ERROR(Flush(offset, len));
  Fence();
  return OkStatus();
}

Result<uint8_t*> NvmmDevice::DirectPointer(uint64_t offset, size_t len) {
  HINFS_RETURN_IF_ERROR(CheckRange(offset, len));
  return volatile_image_.get() + offset;
}

Status NvmmDevice::SimulateCrash() {
  HINFS_ASSIGN_OR_RETURN(std::vector<uint8_t> image, CloneCrashImage());
  return InstallImage(image.data(), image.size());
}

Result<std::vector<uint8_t>> NvmmDevice::CloneCrashImage() const {
  if (shadow_image_ == nullptr) {
    return Status(ErrorCode::kNotSupported, "crash simulation requires track_persistence");
  }
  return std::vector<uint8_t>(shadow_image_.get(), shadow_image_.get() + size_);
}

Result<std::vector<uint8_t>> NvmmDevice::CloneVolatileImage() const {
  return std::vector<uint8_t>(volatile_image_.get(), volatile_image_.get() + size_);
}

Status NvmmDevice::InstallImage(const void* image, size_t len) {
  if (len != size_) {
    return Status(ErrorCode::kInvalidArgument, "image size does not match device");
  }
  std::memcpy(volatile_image_.get(), image, len);
  if (shadow_image_ != nullptr) {
    // After a power cycle the media content is the only content: the installed
    // image is both what the "CPU cache" sees and what is durable.
    std::memcpy(shadow_image_.get(), image, len);
  }
  return OkStatus();
}

void NvmmDevice::StartPersistTrace() {
  auto t = std::make_shared<PersistTrace>(size_);
  std::vector<uint8_t> vol(volatile_image_.get(), volatile_image_.get() + size_);
  std::vector<uint8_t> persistent =
      shadow_image_ != nullptr
          ? std::vector<uint8_t>(shadow_image_.get(), shadow_image_.get() + size_)
          : std::vector<uint8_t>();
  t->set_base_images(std::move(vol), std::move(persistent));
  trace_.store(std::move(t), std::memory_order_release);
}

std::shared_ptr<PersistTrace> NvmmDevice::StopPersistTrace() {
  return trace_.exchange(nullptr, std::memory_order_acq_rel);
}

void NvmmDevice::ResetCounters() {
  flushed_bytes_.store(0, std::memory_order_relaxed);
  loaded_bytes_.store(0, std::memory_order_relaxed);
  fence_count_.store(0, std::memory_order_relaxed);
  flushed_lines_.store(0, std::memory_order_relaxed);
  epoch_count_.store(0, std::memory_order_relaxed);
  unfenced_lines_.store(0, std::memory_order_relaxed);
  max_unfenced_lines_.store(0, std::memory_order_relaxed);
}

}  // namespace hinfs
