file(REMOVE_RECURSE
  "CMakeFiles/nvmm_test.dir/nvmm_test.cc.o"
  "CMakeFiles/nvmm_test.dir/nvmm_test.cc.o.d"
  "nvmm_test"
  "nvmm_test.pdb"
  "nvmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
