# Empty compiler generated dependencies file for ablation_benefit_model.
# This may be replaced when dependencies are built.
