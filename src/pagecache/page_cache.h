// PageCache: emulation of the OS page cache that block-based file systems
// (the EXT2/EXT4+NVMMBD baselines) copy through.
//
// Every cached read is a double copy (device -> page, page -> user) and every
// buffered write is a double copy on the way out (user -> page, page -> device
// at writeback/sync time). The HiNFS paper's Fig. 3(a) architecture.
//
// Pages are keyed by device block number, managed with an LRU list and a dirty
// set; eviction writes back dirty pages; SyncAll()/SyncRange() provide the
// fsync path for the file systems above.

#ifndef SRC_PAGECACHE_PAGE_CACHE_H_
#define SRC_PAGECACHE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/blockdev/block_device.h"
#include "src/common/constants.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace hinfs {

struct PageCacheConfig {
  // Maximum number of resident 4 KB pages (0 = unlimited).
  size_t capacity_pages = 0;
  // Foreground dirty throttling, like the kernel's dirty_ratio: once more than
  // this many pages are dirty, the writing task synchronously writes back the
  // oldest dirty pages (0 = unlimited).
  size_t max_dirty_pages = 0;
};

class PageCache {
 public:
  PageCache(BlockDevice* device, const PageCacheConfig& config = {});
  ~PageCache();

  // Copies `len` bytes at byte offset `offset` within device block `block` into
  // `dst`, faulting the page in from the device if absent (the read-path double
  // copy).
  Status Read(uint64_t block, size_t offset, void* dst, size_t len);

  // Copies user data into the cached page, marking it dirty. Partial-page
  // writes to non-resident pages fault the whole page in first (the
  // fetch-before-write behaviour the paper contrasts CLFW against).
  Status Write(uint64_t block, size_t offset, const void* src, size_t len);

  // Writes back a single page if dirty.
  Status SyncPage(uint64_t block);

  // Writes back all dirty pages (file system sync / unmount).
  Status SyncAll();

  // Drops a clean or dirty page without writeback (file deletion: writes to
  // short-lived files never reach the device).
  void Discard(uint64_t block);

  // Writes back everything and drops all pages (echo 3 > drop_caches; the
  // paper clears the OS page cache before each benchmark).
  Status DropAll();

  // Counters for tests and benches.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t writebacks() const { return writebacks_; }
  size_t resident_pages() const;

 private:
  struct Page {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_pos;
  };

  // All private helpers assume mu_ is held.
  Result<Page*> GetPageLocked(uint64_t block, bool fill_from_device);
  Status EvictIfNeededLocked();
  Status ThrottleDirtyLocked();
  Status WritebackLocked(uint64_t block, Page& page);
  void TouchLocked(uint64_t block, Page& page);

  BlockDevice* device_;
  PageCacheConfig config_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Page> pages_;
  std::list<uint64_t> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t writebacks_ = 0;
  size_t dirty_count_ = 0;
};

}  // namespace hinfs

#endif  // SRC_PAGECACHE_PAGE_CACHE_H_
