#include "src/workloads/trace.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "src/common/clock.h"
#include "src/common/constants.h"
#include "src/common/rng.h"

namespace hinfs {

// Profile parameters are calibrated so ComputeFsyncBytes lands near the
// fractions the paper's Fig. 2 reports: TPC-C > 90 %, Facebook ~75 %,
// Usr0 ~35 %, Usr1 ~28 %, LASR 0 %.

TraceProfile Usr0Profile() {
  TraceProfile p;
  p.name = "Usr0";
  p.num_files = 96;
  p.read_frac = 0.45;
  p.fsync_period = 6;
  p.fsync_file_frac = 0.45;
  p.mean_io = 16 * 1024;
  p.append_frac = 0.45;
  p.locality_theta = 0.5;
  p.seed = 100;
  return p;
}

TraceProfile Usr1Profile() {
  TraceProfile p;
  p.name = "Usr1";
  p.num_files = 96;
  p.read_frac = 0.5;
  p.fsync_period = 7;
  p.fsync_file_frac = 0.35;
  p.mean_io = 12 * 1024;
  p.append_frac = 0.4;
  p.locality_theta = 0.55;
  p.seed = 101;
  return p;
}

TraceProfile LasrProfile() {
  TraceProfile p;
  p.name = "LASR";
  p.num_files = 64;
  p.read_frac = 0.55;
  p.fsync_period = 0;  // the LASR trace contains no fsync at all (Fig. 2)
  p.mean_io = 4 * 1024;
  p.append_frac = 0.6;
  p.locality_theta = 0.5;
  p.seed = 102;
  return p;
}

TraceProfile FacebookProfile() {
  TraceProfile p;
  p.name = "Facebook";
  p.num_files = 48;
  p.read_frac = 0.35;
  // Mobile SQLite-style behaviour: tiny writes, fsync nearly every write.
  p.fsync_period = 1.6;
  p.fsync_file_frac = 0.8;
  p.mean_io = 832;  // the paper notes a sub-1 KB mean I/O size
  p.append_frac = 0.5;
  p.locality_theta = 0.6;
  p.seed = 103;
  return p;
}

TraceProfile TpccTraceProfile() {
  TraceProfile p;
  p.name = "TPCC";
  p.num_files = 32;
  p.read_frac = 0.3;
  p.unlink_frac = 0;
  p.fsync_period = 1.05;  // fsync after essentially every commit write
  p.fsync_file_frac = 1.0;
  p.mean_io = 8 * 1024;
  p.append_frac = 0.7;  // WAL appends dominate
  p.locality_theta = 0.3;
  p.seed = 104;
  return p;
}

std::vector<TraceOp> SynthesizeTrace(const TraceProfile& profile) {
  Rng rng(profile.seed);
  std::vector<TraceOp> trace;
  trace.reserve(profile.num_ops);

  // Per-file synthesis state.
  std::vector<uint64_t> size(profile.num_files, 0);
  std::vector<bool> sync_active(profile.num_files, false);
  for (size_t f = 0; f < profile.num_files; f++) {
    sync_active[f] = rng.NextDouble() < profile.fsync_file_frac;
  }

  auto io_size = [&]() -> uint32_t {
    // Uniform in [mean/4, 2*mean]: a fat-tailed small-I/O shape.
    const uint64_t lo = std::max<uint64_t>(profile.mean_io / 4, 64);
    return static_cast<uint32_t>(rng.Between(lo, profile.mean_io * 2));
  };

  for (size_t i = 0; i < profile.num_ops; i++) {
    const auto f = static_cast<uint32_t>(rng.Skewed(profile.num_files, profile.locality_theta));
    const double roll = rng.NextDouble();

    if (roll < profile.unlink_frac && size[f] > 0) {
      trace.push_back({TraceOpType::kUnlink, f, 0, 0});
      size[f] = 0;
      continue;
    }
    if (roll < profile.unlink_frac + profile.read_frac && size[f] > 0) {
      const uint32_t len = io_size();
      const uint64_t max_off = size[f] > len ? size[f] - len : 0;
      const uint64_t off = max_off == 0 ? 0 : rng.Skewed(max_off, profile.locality_theta);
      trace.push_back({TraceOpType::kRead, f, off, len});
      continue;
    }

    // Write: append or skewed in-place overwrite.
    const uint32_t len = io_size();
    uint64_t off;
    if (size[f] == 0 || rng.NextDouble() < profile.append_frac) {
      off = size[f];
    } else {
      const uint64_t max_off = size[f] > len ? size[f] - len : 0;
      off = max_off == 0 ? 0 : rng.Skewed(max_off, profile.locality_theta);
    }
    if (off + len > profile.max_file_bytes) {
      off = 0;  // wrap: keep files bounded
    }
    trace.push_back({TraceOpType::kWrite, f, off, len});
    size[f] = std::max<uint64_t>(size[f], off + len);

    if (profile.fsync_period > 0 && sync_active[f] &&
        rng.NextDouble() < 1.0 / profile.fsync_period) {
      trace.push_back({TraceOpType::kFsync, f, 0, 0});
    }
  }
  return trace;
}

std::string TraceToText(const std::vector<TraceOp>& trace) {
  std::string out;
  out.reserve(trace.size() * 24);
  char buf[64];
  for (const TraceOp& op : trace) {
    char c = '?';
    switch (op.type) {
      case TraceOpType::kRead:
        c = 'R';
        break;
      case TraceOpType::kWrite:
        c = 'W';
        break;
      case TraceOpType::kUnlink:
        c = 'U';
        break;
      case TraceOpType::kFsync:
        c = 'F';
        break;
    }
    std::snprintf(buf, sizeof(buf), "%c %u %llu %u\n", c, op.file,
                  static_cast<unsigned long long>(op.offset), op.size);
    out += buf;
  }
  return out;
}

Result<std::vector<TraceOp>> TraceFromText(std::string_view text) {
  std::vector<TraceOp> trace;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = text.size();
    }
    const std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    line_no++;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    char c = 0;
    unsigned file = 0;
    unsigned long long offset = 0;
    unsigned size = 0;
    if (std::sscanf(line.c_str(), " %c %u %llu %u", &c, &file, &offset, &size) < 2) {
      return Status(ErrorCode::kInvalidArgument,
                    "trace parse error at line " + std::to_string(line_no));
    }
    TraceOp op{};
    op.file = file;
    op.offset = offset;
    op.size = size;
    switch (c) {
      case 'R':
        op.type = TraceOpType::kRead;
        break;
      case 'W':
        op.type = TraceOpType::kWrite;
        break;
      case 'U':
        op.type = TraceOpType::kUnlink;
        break;
      case 'F':
        op.type = TraceOpType::kFsync;
        break;
      default:
        return Status(ErrorCode::kInvalidArgument,
                      "unknown trace op at line " + std::to_string(line_no));
    }
    trace.push_back(op);
  }
  return trace;
}

FsyncByteStats ComputeFsyncBytes(const std::vector<TraceOp>& trace) {
  FsyncByteStats stats;
  // Dirty-byte tracking at block granularity: a rewrite of a dirty block does
  // not add new bytes that an fsync must persist.
  std::unordered_map<uint32_t, std::unordered_set<uint64_t>> dirty_blocks;
  std::unordered_map<uint32_t, uint64_t> dirty_bytes;
  for (const TraceOp& op : trace) {
    switch (op.type) {
      case TraceOpType::kWrite: {
        stats.total_written += op.size;
        auto& blocks = dirty_blocks[op.file];
        const uint64_t first = op.offset / kBlockSize;
        const uint64_t last = (op.offset + op.size - 1) / kBlockSize;
        uint64_t fresh = 0;
        for (uint64_t b = first; b <= last; b++) {
          if (blocks.insert(b).second) {
            fresh++;
          }
        }
        // Approximate dirty bytes by newly dirtied blocks (coalesced rewrites
        // add nothing).
        dirty_bytes[op.file] += std::min<uint64_t>(op.size, fresh * kBlockSize);
        break;
      }
      case TraceOpType::kFsync:
        stats.fsync_bytes += dirty_bytes[op.file];
        dirty_bytes[op.file] = 0;
        dirty_blocks[op.file].clear();
        break;
      case TraceOpType::kUnlink:
        dirty_bytes[op.file] = 0;
        dirty_blocks[op.file].clear();
        break;
      case TraceOpType::kRead:
        break;
    }
  }
  return stats;
}

Result<TraceBreakdown> ReplayTrace(Vfs* vfs, const std::vector<TraceOp>& trace,
                                   bool drain_at_end) {
  TraceBreakdown bd;
  std::unordered_map<uint32_t, int> fds;
  std::vector<uint8_t> buf(4 << 20);
  FillPattern(buf, 99);

  auto fd_for = [&](uint32_t file) -> Result<int> {
    auto it = fds.find(file);
    if (it != fds.end()) {
      return it->second;
    }
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open("/t" + std::to_string(file), kRdWr | kCreate));
    fds[file] = fd;
    return fd;
  };

  for (const TraceOp& op : trace) {
    switch (op.type) {
      case TraceOpType::kRead: {
        HINFS_ASSIGN_OR_RETURN(int fd, fd_for(op.file));
        const uint64_t t0 = MonotonicNowNs();
        HINFS_RETURN_IF_ERROR(vfs->Pread(fd, buf.data(), op.size, op.offset).status());
        bd.read_ns += MonotonicNowNs() - t0;
        break;
      }
      case TraceOpType::kWrite: {
        HINFS_ASSIGN_OR_RETURN(int fd, fd_for(op.file));
        const uint64_t t0 = MonotonicNowNs();
        HINFS_RETURN_IF_ERROR(vfs->Pwrite(fd, buf.data(), op.size, op.offset).status());
        bd.write_ns += MonotonicNowNs() - t0;
        break;
      }
      case TraceOpType::kFsync: {
        HINFS_ASSIGN_OR_RETURN(int fd, fd_for(op.file));
        const uint64_t t0 = MonotonicNowNs();
        HINFS_RETURN_IF_ERROR(vfs->Fsync(fd));
        bd.fsync_ns += MonotonicNowNs() - t0;
        break;
      }
      case TraceOpType::kUnlink: {
        auto it = fds.find(op.file);
        if (it != fds.end()) {
          HINFS_RETURN_IF_ERROR(vfs->Close(it->second));
          fds.erase(it);
        }
        const uint64_t t0 = MonotonicNowNs();
        Status st = vfs->Unlink("/t" + std::to_string(op.file));
        if (!st.ok() && st.code() != ErrorCode::kNotFound) {
          return st;
        }
        bd.unlink_ns += MonotonicNowNs() - t0;
        break;
      }
    }
    bd.ops++;
  }
  for (auto& [file, fd] : fds) {
    HINFS_RETURN_IF_ERROR(vfs->Close(fd));
  }
  if (drain_at_end) {
    const uint64_t t0 = MonotonicNowNs();
    HINFS_RETURN_IF_ERROR(vfs->SyncFs());
    bd.drain_ns = MonotonicNowNs() - t0;
  }
  return bd;
}

}  // namespace hinfs
