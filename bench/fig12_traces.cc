// Fig. 12: data-intensive trace replay — per-op time breakdown normalized to
// PMFS, including the HiNFS-WB ablation (buffer everything).

#include "bench/bench_common.h"
#include "src/workloads/trace.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 12", "trace replay time breakdown, normalized to PMFS");
  std::vector<BenchJsonRow> rows;

  const FsKind kinds[] = {FsKind::kPmfs,       FsKind::kExt4Dax,  FsKind::kExt2Nvmmbd,
                          FsKind::kExt4Nvmmbd, FsKind::kHinfsWb,  FsKind::kHinfs};

  for (const TraceProfile& base :
       {Usr0Profile(), Usr1Profile(), LasrProfile(), FacebookProfile()}) {
    TraceProfile profile = base;
    profile.num_ops = ScaledOps(25000);
    const auto trace = SynthesizeTrace(profile);

    std::printf("[%s] (%zu ops)\n", profile.name.c_str(), trace.size());
    std::printf("%-13s %9s %9s %9s %9s %9s %9s %9s\n", "fs", "total(ms)", "read", "write",
                "fsync", "unlink", "drain", "norm");
    double pmfs_total = 0;
    for (FsKind kind : kinds) {
      // Buffer sized below the trace working set (paper: buffer = 1/10 of the
      // workload for trace replays), so buffering eager-persistent writes
      // pollutes the buffer as it does in the paper's evaluation.
      auto bed = MakeTestBed(kind, PaperBedConfig(512ull << 20, 6ull << 20));
      if (!bed.ok()) {
        std::fprintf(stderr, "setup: %s\n", bed.status().ToString().c_str());
        return 1;
      }
      auto bd = ReplayTrace((*bed)->vfs.get(), trace);
      if (!bd.ok()) {
        std::fprintf(stderr, "%s: %s\n", FsKindName(kind), bd.status().ToString().c_str());
        return 1;
      }
      const double total_ms = bd->TotalNs() / 1e6;
      if (kind == FsKind::kPmfs) {
        pmfs_total = total_ms;
      }
      std::printf("%-13s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %9.2f\n", FsKindName(kind),
                  total_ms, bd->read_ns / 1e6, bd->write_ns / 1e6, bd->fsync_ns / 1e6,
                  bd->unlink_ns / 1e6, bd->drain_ns / 1e6,
                  pmfs_total > 0 ? total_ms / pmfs_total : 0.0);
      std::fflush(stdout);
      rows.push_back({FsKindName(kind), profile.name, "num_ops",
                      static_cast<double>(trace.size()), total_ms, "total_ms"});
      (void)(*bed)->vfs->Unmount();
    }
    std::printf("\n");
  }
  std::printf("paper shape: HiNFS cuts PMFS's write time on Usr0/Usr1/LASR (-35%% ish\n"
              "total); ~PMFS on Facebook (sync-dense); HiNFS-WB slower than HiNFS on\n"
              "sync-heavy traces; NVMMBD baselines slowest\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
